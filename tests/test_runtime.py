"""Tests for the scheduler, the sep/mix pipeline and traces."""

from __future__ import annotations

import pytest

from repro.gpu import MemoryPool
from repro.runtime import (
    SubdomainWork,
    Task,
    gantt,
    render_schedule,
    run_preprocessing_pipeline,
    schedule_tasks,
)


def test_scheduler_serial_chain():
    tasks = [
        Task("a", 1.0, "cpu"),
        Task("b", 2.0, "cpu", deps=["a"]),
        Task("c", 3.0, "cpu", deps=["b"]),
    ]
    s = schedule_tasks(tasks, n_cpu=4, n_gpu=1)
    assert s.makespan == 6.0
    assert s.tasks["b"].start == 1.0
    assert s.tasks["c"].start == 3.0


def test_scheduler_parallel_independent():
    tasks = [Task(f"t{i}", 1.0, "cpu") for i in range(6)]
    s = schedule_tasks(tasks, n_cpu=3, n_gpu=1)
    assert s.makespan == 2.0
    assert s.utilization("cpu", 3) == pytest.approx(1.0)


def test_scheduler_cross_resource_dependency():
    tasks = [
        Task("fact", 2.0, "cpu"),
        Task("asm", 1.0, "gpu", deps=["fact"]),
    ]
    s = schedule_tasks(tasks, n_cpu=1, n_gpu=1)
    assert s.tasks["asm"].start == 2.0
    assert s.makespan == 3.0
    assert s.busy["gpu"] == 1.0


def test_scheduler_allows_empty_unused_pool():
    """A pure-CPU schedule needs no GPU streams (and vice versa)."""
    tasks = [Task(f"t{i}", 1.0, "cpu") for i in range(4)]
    s = schedule_tasks(tasks, n_cpu=2, n_gpu=0)
    assert s.makespan == 2.0
    s2 = schedule_tasks([Task("g", 1.0, "gpu")], n_cpu=0, n_gpu=1)
    assert s2.makespan == 1.0


def test_scheduler_rejects_missing_pool_for_used_resource():
    with pytest.raises(ValueError, match="gpu tasks scheduled"):
        schedule_tasks([Task("g", 1.0, "gpu")], n_cpu=1, n_gpu=0)
    with pytest.raises(ValueError, match="cpu tasks scheduled"):
        schedule_tasks([Task("c", 1.0, "cpu")], n_cpu=0, n_gpu=1)
    with pytest.raises(ValueError, match=">= 0"):
        schedule_tasks([], n_cpu=-1, n_gpu=1)


def test_pipeline_cpu_only_zero_streams():
    work = [SubdomainWork(factorization=1.0, assembly=0.5) for _ in range(4)]
    res = run_preprocessing_pipeline(
        work, mode="mix", n_threads=2, n_streams=0, assembly_on_gpu=False
    )
    assert res.makespan > 0


def test_scheduler_validates():
    with pytest.raises(ValueError, match="unknown"):
        schedule_tasks([Task("a", 1.0, "cpu", deps=["ghost"])], 1, 1)
    with pytest.raises(ValueError, match="duplicate"):
        schedule_tasks([Task("a", 1.0, "cpu"), Task("a", 1.0, "cpu")], 1, 1)
    with pytest.raises(ValueError, match="cycle"):
        schedule_tasks(
            [Task("a", 1.0, "cpu", deps=["b"]), Task("b", 1.0, "cpu", deps=["a"])],
            1,
            1,
        )
    with pytest.raises(ValueError):
        Task("x", -1.0, "cpu")
    with pytest.raises(ValueError):
        Task("x", 1.0, "fpga")


def test_pipeline_mix_overlaps_sep_does_not():
    work = [SubdomainWork(factorization=1.0, assembly=0.5) for _ in range(8)]
    mix = run_preprocessing_pipeline(work, mode="mix", n_threads=2, n_streams=2)
    sep = run_preprocessing_pipeline(work, mode="sep", n_threads=2, n_streams=2)
    assert mix.makespan == pytest.approx(4.5)
    assert sep.makespan == pytest.approx(6.0)
    assert sep.factorization_makespan == pytest.approx(4.0)
    assert sep.assembly_makespan == pytest.approx(2.0)


def test_pipeline_cpu_only_sep_equals_mix():
    """Paper §4.4: on the CPU both configurations perform the same
    operations, order irrelevant — equal makespans."""
    work = [SubdomainWork(factorization=1.0, assembly=0.5) for _ in range(8)]
    mix = run_preprocessing_pipeline(
        work, mode="mix", n_threads=2, n_streams=2, assembly_on_gpu=False
    )
    sep = run_preprocessing_pipeline(
        work, mode="sep", n_threads=2, n_streams=2, assembly_on_gpu=False
    )
    assert mix.makespan == pytest.approx(sep.makespan)


def test_pipeline_gpu_idle_at_start():
    """The delayed GPU start of mix mode: no assembly before the first
    factorization completes."""
    work = [SubdomainWork(factorization=2.0, assembly=0.1) for _ in range(4)]
    mix = run_preprocessing_pipeline(work, mode="mix", n_threads=4, n_streams=4)
    first_asm = min(
        t.start for tid, t in mix.schedule.tasks.items() if tid.startswith("asm:")
    )
    assert first_asm >= 2.0


def test_pipeline_memory_replay_counts_stalls():
    work = [
        SubdomainWork(factorization=1.0, assembly=1.0, temp_bytes=100, persistent_bytes=1)
        for _ in range(4)
    ]
    pool = MemoryPool(capacity=150.0)
    res = run_preprocessing_pipeline(
        work, mode="sep", n_threads=4, n_streams=4, memory_pool=pool
    )
    assert res.memory_stalls > 0
    assert res.memory_high_water <= 150.0


def test_pipeline_no_memory_pool_no_stats():
    work = [SubdomainWork(factorization=1.0, assembly=1.0)]
    res = run_preprocessing_pipeline(work, n_threads=1, n_streams=1)
    assert res.memory_stalls == 0
    assert res.memory_high_water == 0.0


def test_pipeline_validates():
    with pytest.raises(ValueError, match="unknown pipeline"):
        run_preprocessing_pipeline([SubdomainWork(1.0, 1.0)], mode="pipelined")
    with pytest.raises(ValueError, match="no subdomains"):
        run_preprocessing_pipeline([], mode="mix")


def test_render_schedule_and_gantt():
    work = [SubdomainWork(factorization=1.0, assembly=0.5) for _ in range(3)]
    res = run_preprocessing_pipeline(work, mode="mix", n_threads=2, n_streams=2)
    text = render_schedule(res.schedule)
    assert "makespan" in text
    assert "fact:0" in text
    chart = gantt(res.schedule, "cpu", 2, width=30)
    assert chart.count("\n") == 1  # two worker rows
    with pytest.raises(ValueError):
        gantt(res.schedule, "cpu", 2, width=5)


def test_pipeline_per_subdomain():
    work = [SubdomainWork(factorization=1.0, assembly=1.0) for _ in range(4)]
    res = run_preprocessing_pipeline(work, mode="mix", n_threads=1, n_streams=1)
    assert res.per_subdomain == pytest.approx(res.makespan / 4)


# ---------------------------------------------------------------------------
# property tests
# ---------------------------------------------------------------------------

from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=25, deadline=None)
@given(
    n_sub=st.integers(1, 20),
    n_threads=st.integers(1, 8),
    n_streams=st.integers(1, 8),
    fact=st.floats(0.01, 10.0),
    asm=st.floats(0.01, 10.0),
)
def test_property_pipeline_makespan_bounds(n_sub, n_threads, n_streams, fact, asm):
    """Makespan is bounded below by the critical path and above by the
    serial execution, and mix never loses to sep on the GPU."""
    work = [SubdomainWork(factorization=fact, assembly=asm) for _ in range(n_sub)]
    mix = run_preprocessing_pipeline(
        work, mode="mix", n_threads=n_threads, n_streams=n_streams
    )
    sep = run_preprocessing_pipeline(
        work, mode="sep", n_threads=n_threads, n_streams=n_streams
    )
    serial = n_sub * (fact + asm)
    critical = fact + asm
    for res in (mix, sep):
        assert critical <= res.makespan + 1e-9
        assert res.makespan <= serial + 1e-9
    assert mix.makespan <= sep.makespan + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    durations=st.lists(st.floats(0.0, 5.0), min_size=1, max_size=15),
    n_cpu=st.integers(1, 6),
)
def test_property_scheduler_work_conservation(durations, n_cpu):
    """Total busy time equals the sum of durations; utilization <= 1."""
    tasks = [Task(f"t{i}", d, "cpu") for i, d in enumerate(durations)]
    s = schedule_tasks(tasks, n_cpu=n_cpu, n_gpu=1)
    assert s.busy["cpu"] == pytest.approx(sum(durations))
    assert s.utilization("cpu", n_cpu) <= 1.0 + 1e-9
    # No two tasks overlap on one worker.
    by_worker: dict[int, list] = {}
    for t in s.tasks.values():
        by_worker.setdefault(t.worker, []).append((t.start, t.end))
    for spans in by_worker.values():
        spans.sort()
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert s2 >= e1 - 1e-12
