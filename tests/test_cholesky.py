"""Tests for the numeric Cholesky engines."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import NotPositiveDefiniteError, cholesky
from tests.conftest import grid_coords, laplacian_1d, laplacian_2d, random_spd

ENGINES = ["native", "superlu"]
ORDERINGS = ["natural", "amd", "rcm", "nd"]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("ordering", ORDERINGS)
def test_reconstruction(engine, ordering):
    a = random_spd(90, density=0.05, seed=4)
    f = cholesky(a, ordering=ordering, engine=engine)
    ap = a[f.perm][:, f.perm].toarray()
    assert np.allclose((f.l @ f.l.T).toarray(), ap, atol=1e-9 * 90)


@pytest.mark.parametrize("engine", ENGINES)
def test_solve_roundtrip(engine, rng):
    a = laplacian_2d(9, 9)
    f = cholesky(a, engine=engine)
    b = rng.standard_normal(a.shape[0])
    x = f.solve(b)
    assert np.allclose(a @ x, b, atol=1e-9)


@pytest.mark.parametrize("engine", ENGINES)
def test_solve_matrix_rhs(engine, rng):
    a = laplacian_2d(6, 7)
    f = cholesky(a, engine=engine)
    b = rng.standard_normal((a.shape[0], 4))
    x = f.solve(b)
    assert np.allclose(a @ x, b, atol=1e-9)


def test_engines_agree():
    a = random_spd(70, density=0.07, seed=9)
    perm = np.random.default_rng(1).permutation(70)
    f1 = cholesky(a, perm=perm, engine="native")
    f2 = cholesky(a, perm=perm, engine="superlu")
    assert np.allclose(f1.l.toarray(), f2.l.toarray(), atol=1e-9)
    assert f1.nnz == f2.nnz


def test_explicit_perm_used():
    a = random_spd(20, seed=2)
    perm = np.arange(20)[::-1].copy()
    f = cholesky(a, perm=perm)
    assert np.array_equal(f.perm, perm)


def test_bad_perm_rejected():
    a = random_spd(10)
    with pytest.raises(ValueError):
        cholesky(a, perm=np.zeros(10, dtype=int))
    with pytest.raises(ValueError):
        cholesky(a, perm=np.arange(9))


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        cholesky(random_spd(5), engine="cusolver")


@pytest.mark.parametrize("engine", ENGINES)
def test_not_positive_definite_raises(engine):
    a = laplacian_1d(12, neumann=True)  # singular
    with pytest.raises(NotPositiveDefiniteError):
        cholesky(a, ordering="natural", engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_indefinite_raises(engine):
    a = sp.csr_matrix(np.diag([1.0, -1.0, 2.0]))
    with pytest.raises(NotPositiveDefiniteError):
        cholesky(a, ordering="natural", engine=engine)


def test_factor_is_lower_triangular():
    a = random_spd(40, seed=8)
    f = cholesky(a, ordering="amd")
    coo = f.l.tocoo()
    assert np.all(coo.row >= coo.col)


def test_diagonal_first_in_csc_columns():
    a = random_spd(30, seed=3)
    f = cholesky(a)
    lc = f.l.tocsc()
    for j in range(30):
        assert lc.indices[lc.indptr[j]] == j


def test_logdet_matches_dense():
    a = random_spd(25, seed=6)
    f = cholesky(a)
    sign, logdet = np.linalg.slogdet(a.toarray())
    assert sign > 0
    assert np.isclose(f.logdet(), logdet, rtol=1e-10)


def test_flops_scale_with_fill():
    dense = sp.csr_matrix(np.ones((30, 30)) + 30 * np.eye(30))
    sparse = laplacian_1d(30)
    f_dense = cholesky(dense, ordering="natural")
    f_sparse = cholesky(sparse, ordering="natural")
    assert f_dense.flops > 10 * f_sparse.flops


def test_coords_forwarded_to_nd():
    a = laplacian_2d(8, 8)
    f = cholesky(a, ordering="nd", coords=grid_coords(8, 8))
    assert np.allclose(
        (f.l @ f.l.T).toarray(), a[f.perm][:, f.perm].toarray(), atol=1e-9
    )


def test_solve_permuted_consistent(rng):
    a = random_spd(35, seed=10)
    f = cholesky(a, ordering="amd")
    b = rng.standard_normal(35)
    xp = f.solve_permuted(b[f.perm])
    x = np.empty_like(xp)
    x[f.perm] = xp
    assert np.allclose(a @ x, b, atol=1e-8)


def test_1x1_matrix():
    a = sp.csr_matrix(np.array([[4.0]]))
    f = cholesky(a, ordering="natural", engine="native")
    assert np.isclose(f.l[0, 0], 2.0)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=35),
    seed=st.integers(min_value=0, max_value=10_000),
    engine=st.sampled_from(ENGINES),
)
def test_property_cholesky_reconstructs(n, seed, engine):
    a = random_spd(n, density=min(1.0, 5.0 / n), seed=seed)
    f = cholesky(a, ordering="amd", engine=engine)
    ap = a[f.perm][:, f.perm].toarray()
    assert np.allclose((f.l @ f.l.T).toarray(), ap, atol=1e-8 * max(n, 1))


@settings(max_examples=15, deadline=None)
@given(
    nx=st.integers(min_value=2, max_value=7),
    ny=st.integers(min_value=2, max_value=7),
)
def test_property_laplacian_solve(nx, ny):
    a = laplacian_2d(nx, ny)
    f = cholesky(a)
    b = np.ones(a.shape[0])
    x = f.solve(b)
    assert np.allclose(a @ x, b, atol=1e-9)
