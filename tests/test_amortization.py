"""Tests for the amortization-point analysis (Fig. 1 / Fig. 10 logic),
including the multi-RHS (``n_rhs``) panel scaling of PR 9."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.feti import (
    ApproachTiming,
    amortization_point,
    best_approach,
    crossover_table,
)


def test_total_time_linear_in_iterations():
    t = ApproachTiming("x", preprocessing=2.0, apply_per_iteration=0.5)
    assert t.total(0) == 2.0
    assert t.total(10) == 7.0
    with pytest.raises(ValueError):
        t.total(-1)


def test_amortization_point_basic():
    impl = ApproachTiming("impl", preprocessing=1.0, apply_per_iteration=1.0)
    expl = ApproachTiming("expl", preprocessing=11.0, apply_per_iteration=0.5)
    ap = amortization_point(impl, expl)
    assert ap == 20
    # At the amortization point the explicit total is at most the implicit.
    assert expl.total(int(ap)) <= impl.total(int(ap))
    assert expl.total(int(ap) - 2) > impl.total(int(ap) - 2)


def test_amortization_point_explicit_never_behind():
    impl = ApproachTiming("impl", preprocessing=5.0, apply_per_iteration=1.0)
    expl = ApproachTiming("expl", preprocessing=4.0, apply_per_iteration=0.5)
    assert amortization_point(impl, expl) == 0.0


def test_amortization_point_never_amortizes():
    impl = ApproachTiming("impl", preprocessing=1.0, apply_per_iteration=0.5)
    expl = ApproachTiming("expl", preprocessing=2.0, apply_per_iteration=0.5)
    assert math.isinf(amortization_point(impl, expl))
    expl2 = ApproachTiming("expl", preprocessing=2.0, apply_per_iteration=0.6)
    assert math.isinf(amortization_point(impl, expl2))


def test_best_approach_and_crossover():
    impl = ApproachTiming("impl", preprocessing=1.0, apply_per_iteration=1.0)
    expl = ApproachTiming("expl", preprocessing=50.0, apply_per_iteration=0.1)
    assert best_approach([impl, expl], 10).name == "impl"
    assert best_approach([impl, expl], 1000).name == "expl"
    table = crossover_table([impl, expl], [1, 10, 100, 1000])
    names = [name for _, name, _ in table]
    # Monotone transition: once explicit wins it keeps winning.
    assert names == sorted(names, key=lambda n: n == "expl")
    with pytest.raises(ValueError):
        best_approach([], 1)


def test_total_time_scales_with_n_rhs():
    """A panel of k load cases pays the per-iteration apply k times but the
    preprocessing only once."""
    t = ApproachTiming("x", preprocessing=2.0, apply_per_iteration=0.5)
    assert t.total(10, n_rhs=1) == t.total(10)  # k=1: the classic formula
    assert t.total(10, n_rhs=4) == 2.0 + 10 * 4 * 0.5
    with pytest.raises(ValueError):
        t.total(10, n_rhs=0)


def test_amortization_point_arrives_n_rhs_times_sooner():
    impl = ApproachTiming("impl", preprocessing=1.0, apply_per_iteration=1.0)
    expl = ApproachTiming("expl", preprocessing=11.0, apply_per_iteration=0.5)
    assert amortization_point(impl, expl) == 20
    assert amortization_point(impl, expl, n_rhs=1) == 20  # k=1 unchanged
    assert amortization_point(impl, expl, n_rhs=4) == 5
    assert amortization_point(impl, expl, n_rhs=40) == 1
    with pytest.raises(ValueError):
        amortization_point(impl, expl, n_rhs=0)


def test_feti_timings_apply_total_is_rhs_aware():
    """Regression for the latent one-RHS assumption: the per-iteration
    aggregate scales with the panel width, and with ``n_rhs=1`` (every
    Fig. 10 single-RHS run) it is bit-for-bit the old plain sum."""
    from repro.feti import FetiTimings

    t = FetiTimings(apply_per_subdomain=[0.25, 0.5, 0.125])
    assert t.n_rhs == 1
    assert t.apply_total_per_iteration == sum(t.apply_per_subdomain)
    t.n_rhs = 4
    assert t.apply_total_per_iteration == 4 * sum(t.apply_per_subdomain)
    assert t.apply_mean_per_subdomain == t.apply_total_per_iteration / 3


def test_fig10_amortization_pinned_for_single_rhs():
    """End to end: a k=1 solve leaves the Fig. 10 amortization inputs
    exactly where the pre-``n_rhs`` code put them, and a block solve with
    the same decomposition only scales the apply aggregate."""
    from repro.dd import decompose
    from repro.fem import heat_transfer_2d
    from repro.feti import FetiSolver

    dec = decompose(heat_transfer_2d(12, dirichlet=("left",)), grid=(3, 3))
    solver = FetiSolver(dec, approach="impl_mkl")
    solver.preprocess()
    solver.solve()
    t = solver.timings
    assert t.n_rhs == 1
    assert t.apply_total_per_iteration == pytest.approx(
        sum(t.apply_per_subdomain), rel=0, abs=0
    )

    block = FetiSolver(dec, approach="impl_mkl")
    block.preprocess()
    per_sub_before = list(block.timings.apply_per_subdomain)
    block.solve_block(n_rhs=3, block=True, grouped=False, seed=0)
    tb = block.timings
    assert tb.n_rhs == 3
    assert tb.apply_per_subdomain == per_sub_before  # per-RHS entries untouched
    assert tb.apply_total_per_iteration == pytest.approx(
        3 * sum(per_sub_before), rel=1e-12
    )


@settings(max_examples=50, deadline=None)
@given(
    prep_i=st.floats(0.001, 100),
    prep_e=st.floats(0.001, 100),
    app_i=st.floats(0.001, 10),
    app_e=st.floats(0.001, 10),
)
def test_property_amortization_is_crossing(prep_i, prep_e, app_i, app_e):
    impl = ApproachTiming("i", prep_i, app_i)
    expl = ApproachTiming("e", prep_e, app_e)
    ap = amortization_point(impl, expl)
    if ap == 0.0:
        assert prep_e <= prep_i
    elif math.isinf(ap):
        assert app_e >= app_i
    else:
        n = int(ap)
        assert expl.total(n) <= impl.total(n) + 1e-9
        if n >= 1:
            assert expl.total(n - 1) >= impl.total(n - 1) - 1e-6
