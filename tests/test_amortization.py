"""Tests for the amortization-point analysis (Fig. 1 / Fig. 10 logic)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.feti import (
    ApproachTiming,
    amortization_point,
    best_approach,
    crossover_table,
)


def test_total_time_linear_in_iterations():
    t = ApproachTiming("x", preprocessing=2.0, apply_per_iteration=0.5)
    assert t.total(0) == 2.0
    assert t.total(10) == 7.0
    with pytest.raises(ValueError):
        t.total(-1)


def test_amortization_point_basic():
    impl = ApproachTiming("impl", preprocessing=1.0, apply_per_iteration=1.0)
    expl = ApproachTiming("expl", preprocessing=11.0, apply_per_iteration=0.5)
    ap = amortization_point(impl, expl)
    assert ap == 20
    # At the amortization point the explicit total is at most the implicit.
    assert expl.total(int(ap)) <= impl.total(int(ap))
    assert expl.total(int(ap) - 2) > impl.total(int(ap) - 2)


def test_amortization_point_explicit_never_behind():
    impl = ApproachTiming("impl", preprocessing=5.0, apply_per_iteration=1.0)
    expl = ApproachTiming("expl", preprocessing=4.0, apply_per_iteration=0.5)
    assert amortization_point(impl, expl) == 0.0


def test_amortization_point_never_amortizes():
    impl = ApproachTiming("impl", preprocessing=1.0, apply_per_iteration=0.5)
    expl = ApproachTiming("expl", preprocessing=2.0, apply_per_iteration=0.5)
    assert math.isinf(amortization_point(impl, expl))
    expl2 = ApproachTiming("expl", preprocessing=2.0, apply_per_iteration=0.6)
    assert math.isinf(amortization_point(impl, expl2))


def test_best_approach_and_crossover():
    impl = ApproachTiming("impl", preprocessing=1.0, apply_per_iteration=1.0)
    expl = ApproachTiming("expl", preprocessing=50.0, apply_per_iteration=0.1)
    assert best_approach([impl, expl], 10).name == "impl"
    assert best_approach([impl, expl], 1000).name == "expl"
    table = crossover_table([impl, expl], [1, 10, 100, 1000])
    names = [name for _, name, _ in table]
    # Monotone transition: once explicit wins it keeps winning.
    assert names == sorted(names, key=lambda n: n == "expl")
    with pytest.raises(ValueError):
        best_approach([], 1)


@settings(max_examples=50, deadline=None)
@given(
    prep_i=st.floats(0.001, 100),
    prep_e=st.floats(0.001, 100),
    app_i=st.floats(0.001, 10),
    app_e=st.floats(0.001, 10),
)
def test_property_amortization_is_crossing(prep_i, prep_e, app_i, app_e):
    impl = ApproachTiming("i", prep_i, app_i)
    expl = ApproachTiming("e", prep_e, app_e)
    ap = amortization_point(impl, expl)
    if ap == 0.0:
        assert prep_e <= prep_i
    elif math.isinf(ap):
        assert app_e >= app_i
    else:
        n = int(ap)
        assert expl.total(n) <= impl.total(n) + 1e-9
        if n >= 1:
            assert expl.total(n - 1) >= impl.total(n - 1) - 1e-6
