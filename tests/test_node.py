"""Tests for the full-node (multi-process) preprocessing simulation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    KAROLINA_GPU_NODE,
    NodeSpec,
    SubdomainWork,
    run_node_preprocessing,
)


def _work(n, fact=1.0, asm=0.5):
    return [SubdomainWork(factorization=fact, assembly=asm) for _ in range(n)]


def test_node_spec_defaults_and_validation():
    assert KAROLINA_GPU_NODE.n_processes == 8
    assert KAROLINA_GPU_NODE.threads_per_process == 16
    with pytest.raises(ValueError):
        NodeSpec(n_processes=0)
    with pytest.raises(ValueError):
        NodeSpec(threads_per_process=0)


def test_balanced_clusters_scale_perfectly():
    """The paper: processes do not influence each other — a node with 8
    identical clusters finishes exactly when one process would."""
    node = NodeSpec(n_processes=8, threads_per_process=2, streams_per_process=2)
    one = run_node_preprocessing([_work(8)], node=node)
    eight = run_node_preprocessing([_work(8) for _ in range(8)], node=node)
    assert eight.makespan == pytest.approx(one.makespan)
    assert eight.balance == pytest.approx(1.0)
    assert eight.parallel_efficiency == pytest.approx(1.0)


def test_straggler_cluster_bounds_the_node():
    node = NodeSpec(n_processes=2, threads_per_process=2, streams_per_process=2)
    res = run_node_preprocessing([_work(2), _work(12)], node=node)
    assert res.makespan == pytest.approx(res.per_process[1].makespan)
    assert res.balance < 1.0
    assert res.parallel_efficiency < 1.0


def test_node_validates_cluster_count():
    node = NodeSpec(n_processes=2)
    with pytest.raises(ValueError):
        run_node_preprocessing([_work(1)] * 3, node=node)
    with pytest.raises(ValueError):
        run_node_preprocessing([], node=node)


def test_node_cpu_only_mode():
    node = NodeSpec(n_processes=2, threads_per_process=2, streams_per_process=2)
    res = run_node_preprocessing(
        [_work(4), _work(4)], node=node, mode="sep", assembly_on_gpu=False
    )
    assert res.makespan > 0


@settings(max_examples=20, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 10), min_size=1, max_size=8),
)
def test_property_node_makespan_is_max_of_processes(sizes):
    node = NodeSpec(n_processes=8, threads_per_process=2, streams_per_process=2)
    res = run_node_preprocessing([_work(n) for n in sizes], node=node)
    assert res.makespan == pytest.approx(max(p.makespan for p in res.per_process))
    assert 0 < res.balance <= 1.0
    assert 0 < res.parallel_efficiency <= 1.0
