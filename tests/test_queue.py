"""Tests for the SQLite work queue (``repro.store.queue``).

Lease/heartbeat/backoff/dead-letter semantics are exercised with an
injectable clock (no sleeping), plus a hypothesis state sweep asserting
the table invariants under arbitrary worker interleavings.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import (
    DEAD,
    DONE,
    FAILED,
    LEASED,
    OPEN,
    FaultInjector,
    InjectedCrash,
    JobQueue,
    LostLease,
    QueueError,
)


class FakeClock:
    """Deterministic, manually advanced wall clock."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def queue(tmp_path, clock):
    q = JobQueue(tmp_path / "queue.db", backoff_base=1.0, backoff_cap=8.0, clock=clock)
    yield q
    q.close()


def test_submit_claim_complete_lifecycle(queue):
    job_id = queue.submit("assemble", {"cells": 4})
    assert queue.get(job_id).status == OPEN
    job = queue.claim("w1", lease_seconds=30.0)
    assert job.id == job_id and job.status == LEASED
    assert job.attempts == 1 and job.owner == "w1"
    assert job.payload == {"cells": 4}
    queue.complete(job_id, "w1", {"ok": True})
    done = queue.get(job_id)
    assert done.status == DONE and done.result == {"ok": True}
    assert queue.pending() == 0


def test_claim_empty_queue_returns_none(queue):
    assert queue.claim("w1") is None


def test_claim_orders_by_id(queue):
    first = queue.submit("assemble", {"n": 1})
    queue.submit("assemble", {"n": 2})
    assert queue.claim("w1").id == first


def test_expired_lease_is_reaped_and_reclaimable(queue, clock):
    job_id = queue.submit("assemble", {})
    queue.claim("w1", lease_seconds=10.0)
    # Within the lease nothing is claimable.
    assert queue.claim("w2") is None
    # Past the deadline the job is reaped into the retry pool; after its
    # backoff it is claimable by someone else, counting a new attempt.
    clock.advance(10.1)
    queue.claim("w2")  # triggers the reap; job now failed-in-backoff
    job = queue.get(job_id)
    assert job.status == FAILED and "lease expired" in job.error
    clock.advance(queue.backoff_base + 0.1)
    job = queue.claim("w2")
    assert job is not None and job.owner == "w2" and job.attempts == 2


def test_heartbeat_extends_lease(queue, clock):
    job_id = queue.submit("assemble", {})
    queue.claim("w1", lease_seconds=10.0)
    clock.advance(8.0)
    queue.heartbeat(job_id, "w1", lease_seconds=10.0)
    clock.advance(8.0)  # 16s after claim: dead without the heartbeat
    assert queue.claim("w2") is None
    assert queue.get(job_id).status == LEASED


def test_late_heartbeat_raises_lost_lease(queue, clock):
    job_id = queue.submit("assemble", {})
    queue.claim("w1", lease_seconds=10.0)
    clock.advance(11.0)
    with pytest.raises(LostLease):
        queue.heartbeat(job_id, "w1")
    assert queue.get(job_id).status == FAILED
    # The queue must stay usable (no transaction left open).
    assert queue.claim("w2") is None  # still in backoff


def test_complete_after_reap_raises_lost_lease(queue, clock):
    job_id = queue.submit("assemble", {})
    queue.claim("w1", lease_seconds=10.0)
    clock.advance(10.1)
    queue.claim("w2")  # reap
    clock.advance(2.0)
    other = queue.claim("w2")
    assert other.id == job_id
    with pytest.raises(LostLease):
        queue.complete(job_id, "w1", {"stale": True})
    queue.complete(job_id, "w2", {"fresh": True})
    assert queue.get(job_id).result == {"fresh": True}


def test_fail_applies_capped_exponential_backoff(queue, clock):
    job_id = queue.submit("assemble", {}, max_attempts=10)
    expected = [1.0, 2.0, 4.0, 8.0, 8.0]  # base 1, cap 8
    for backoff in expected:
        job = queue.claim("w1")
        assert job is not None
        queue.fail(job_id, "w1", "boom")
        row = queue.get(job_id)
        assert row.status == FAILED
        assert row.backoff_until == pytest.approx(clock.now + backoff)
        # Not claimable inside the backoff window.
        clock.advance(backoff * 0.5)
        assert queue.claim("w1") is None
        clock.advance(backoff * 0.5 + 0.01)


def test_dead_letter_after_max_attempts(queue, clock):
    job_id = queue.submit("assemble", {}, max_attempts=2)
    for _ in range(2):
        job = queue.claim("w1")
        assert job is not None
        queue.fail(job_id, "w1", "boom")
        clock.advance(10.0)
    job = queue.get(job_id)
    assert job.status == DEAD and job.error == "boom"
    assert queue.claim("w1") is None
    assert queue.pending() == 0
    assert queue.counts()[DEAD] == 1


def test_claim_crash_leaves_stale_lease_then_recovers(tmp_path, clock):
    faults = FaultInjector("queue.claim.crash:1")
    q = JobQueue(tmp_path / "q.db", clock=clock, faults=faults)
    job_id = q.submit("assemble", {})
    with pytest.raises(InjectedCrash):
        q.claim("w1", lease_seconds=5.0)
    # The lease committed before the "death": the row is leased by a ghost.
    assert q.get(job_id).status == LEASED
    q2 = JobQueue(tmp_path / "q.db", clock=clock)
    assert q2.claim("w2") is None
    clock.advance(5.1)
    q2.claim("w2")  # reap
    clock.advance(2.0)
    job = q2.claim("w2")
    assert job is not None and job.id == job_id and job.attempts == 2
    q.close()
    q2.close()


def test_complete_crash_loses_attempt_not_job(tmp_path, clock):
    faults = FaultInjector("queue.complete.crash:1")
    q = JobQueue(tmp_path / "q.db", clock=clock, faults=faults)
    job_id = q.submit("assemble", {})
    q.claim("w1", lease_seconds=5.0)
    with pytest.raises(InjectedCrash):
        q.complete(job_id, "w1", {"lost": True})
    assert q.get(job_id).status == LEASED  # completion never committed
    clock.advance(5.1)
    q.claim("w2")  # reap
    clock.advance(2.0)
    job = q.claim("w2")
    assert job.id == job_id
    q.complete(job_id, "w2", {"ok": True})
    assert q.get(job_id).status == DONE
    q.close()


def test_concurrent_claims_are_disjoint(tmp_path):
    q = JobQueue(tmp_path / "q.db")
    n_jobs = 20
    for i in range(n_jobs):
        q.submit("assemble", {"i": i})
    claimed: list[int] = []
    lock = threading.Lock()

    def worker(name: str) -> None:
        mine = JobQueue(tmp_path / "q.db")
        try:
            while True:
                job = mine.claim(name, lease_seconds=60.0)
                if job is None:
                    return
                with lock:
                    claimed.append(job.id)
                mine.complete(job.id, name, {})
        finally:
            mine.close()

    threads = [threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sorted(claimed) == sorted(set(claimed))  # no double-claims
    assert len(claimed) == n_jobs
    assert q.counts()[DONE] == n_jobs
    q.close()


def test_unknown_job_raises(queue):
    with pytest.raises(QueueError):
        queue.get(999)
    with pytest.raises(QueueError):
        queue.complete(999, "w1")


def test_submit_validates_max_attempts(queue):
    with pytest.raises(ValueError):
        queue.submit("assemble", {}, max_attempts=0)


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.sampled_from(["claim", "complete", "fail", "tick", "big_tick"]),
        min_size=1,
        max_size=40,
    ),
    n_jobs=st.integers(min_value=1, max_value=4),
)
def test_queue_invariants_hold_under_any_interleaving(tmp_path_factory, ops, n_jobs):
    """Whatever a confused worker does, the table stays consistent:
    states are legal, attempts never exceed max+? bounds, done jobs keep
    their results, and nothing is leased by two owners (single worker
    here; disjointness under real concurrency is tested above)."""
    tmp = tmp_path_factory.mktemp("q")
    clock = FakeClock()
    q = JobQueue(tmp / "q.db", backoff_base=1.0, backoff_cap=4.0, clock=clock)
    for i in range(n_jobs):
        q.submit("assemble", {"i": i}, max_attempts=3)
    held: int | None = None
    for op in ops:
        if op == "claim":
            job = q.claim("w", lease_seconds=5.0)
            if job is not None:
                held = job.id
        elif op == "complete" and held is not None:
            try:
                q.complete(held, "w", {"ok": True})
            except LostLease:
                pass
            held = None
        elif op == "fail" and held is not None:
            try:
                q.fail(held, "w", "induced")
            except LostLease:
                pass
            held = None
        elif op == "tick":
            clock.advance(1.0)
        elif op == "big_tick":
            clock.advance(10.0)
    for job in q.jobs():
        assert job.status in (OPEN, LEASED, DONE, FAILED, DEAD)
        assert 0 <= job.attempts <= job.max_attempts
        if job.status == DONE:
            assert job.result == {"ok": True}
        if job.status == DEAD:
            assert job.attempts == job.max_attempts
        if job.status == LEASED:
            assert job.owner == "w"
        if job.status == FAILED:
            assert job.backoff_until <= clock.now + q.backoff_cap
    q.close()


# -- trace-context propagation (fleet observability) -------------------------


def test_submit_stamps_trace_context_from_current_span(queue):
    from repro.obs import set_tracer, tracing

    with tracing() as tracer:
        with tracer.span("submit.root"):
            job_id = queue.submit("assemble", {"cells": 4})
    job = queue.get(job_id)
    assert job.trace_id == tracer.trace_id
    assert job.parent_span and job.parent_span.startswith(tracer.tag + ":")
    assert job.context.trace_id == tracer.trace_id
    # the queue.submit span minted its own context id for the fleet merge
    submit = next(s for s in tracer.spans() if s.name == "queue.submit")
    assert submit.attrs["ctx"] == job.parent_span
    assert submit.attrs["job"] == job_id


def test_submit_without_tracing_still_assigns_trace_id(queue):
    job = queue.get(queue.submit("assemble", {}))
    assert job.trace_id  # linkable even when submitted with tracing off
    assert job.parent_span is None
    assert job.context.span_id == ""


def test_submit_with_explicit_context(queue):
    from repro.obs import TraceContext

    ctx = TraceContext(trace_id="f" * 32, span_id="dead:7")
    job = queue.get(queue.submit("assemble", {}, context=ctx))
    assert job.trace_id == "f" * 32
    assert job.parent_span == "dead:7"
    assert job.context == ctx


def test_trace_context_preserved_across_reap_and_retries(queue, clock):
    from repro.obs import TraceContext

    ctx = TraceContext(trace_id="a" * 32, span_id="beef:3")
    job_id = queue.submit("assemble", {}, context=ctx)
    first = queue.claim("w1", lease_seconds=10.0)
    assert first.id == job_id and first.context == ctx
    clock.advance(11.0)  # w1 "crashes"; lease expires
    assert queue.claim("w2", lease_seconds=10.0) is None  # reaped into backoff
    clock.advance(2.0)
    reclaimed = queue.claim("w2", lease_seconds=10.0)
    assert reclaimed.id == job_id and reclaimed.attempts == 2
    assert reclaimed.context == ctx  # stamped once, never rewritten


def test_pre_fleet_schema_migrates_in_place(tmp_path):
    import sqlite3

    path = tmp_path / "old.db"
    db = sqlite3.connect(path)
    db.executescript("""
        CREATE TABLE jobs (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            kind TEXT NOT NULL,
            payload TEXT NOT NULL,
            status TEXT NOT NULL DEFAULT 'open',
            attempts INTEGER NOT NULL DEFAULT 0,
            max_attempts INTEGER NOT NULL DEFAULT 5,
            owner TEXT,
            lease_deadline REAL,
            backoff_until REAL NOT NULL DEFAULT 0,
            result TEXT,
            error TEXT,
            created_at REAL NOT NULL,
            updated_at REAL NOT NULL
        );
    """)
    db.execute(
        "INSERT INTO jobs (kind, payload, created_at, updated_at) "
        "VALUES ('assemble', '{}', 1.0, 1.0)"
    )
    db.commit()
    db.close()
    queue = JobQueue(path)  # opening migrates: ALTER TABLE adds the columns
    old_job = queue.get(1)
    assert old_job.trace_id is None and old_job.context is None
    new_id = queue.submit("assemble", {})
    assert queue.get(new_id).trace_id  # new rows carry a context
    queue.close()
    # idempotent: re-opening an already-migrated file is fine
    JobQueue(path).close()


def test_queue_metrics_counters(tmp_path, clock):
    from repro.obs import tracing

    with tracing() as tracer:
        q = JobQueue(tmp_path / "q.db", backoff_base=1.0, clock=clock)
        job_id = q.submit("assemble", {})
        q.submit("assemble", {})
        job = q.claim("w1")
        q.complete(job.id, "w1", {})
        job2 = q.claim("w1", lease_seconds=5.0)
        q.fail(job2.id, "w1", "boom")
        clock.advance(2.0)
        job3 = q.claim("w1", lease_seconds=5.0)  # retry after backoff
        clock.advance(6.0)
        q.claim("w2")  # reaps job3's expired lease
        q.close()
    m = tracer.metrics
    assert m.counter("queue.submits") == 2
    assert m.counter("queue.completions") == 1
    assert m.counter("queue.failures") == 1
    assert m.counter("queue.reaped") == 1
    backoff = m.histogram("queue.backoff_seconds")
    assert backoff is not None and backoff.n >= 2  # fail + reap
    assert job_id == job.id
