"""Tests for the batched assembly engine and its symbolic pattern cache."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.batch import (
    BatchAssembler,
    BatchItem,
    PatternCache,
    factor_fingerprint,
    geometric_fingerprint,
    items_from_decomposition,
    pattern_digest,
    subdomain_fingerprint,
    symbolic_analysis_cost,
)
from repro.core import (
    PruningPlan,
    SchurAssembler,
    baseline_config,
    default_config,
    trsm_factor_split,
)
from repro.core.estimate import FactorPattern, estimate_assembly, estimate_from_patterns
from repro.core.stepped import stepped_permutation
from repro.feti.planner import plan_population
from repro.gpu import A100_40GB, Executor
from repro.gpu.spec import PCIE4_X16
from repro.sparse import cholesky, symbolic_from_factor
from tests.conftest import random_spd


@pytest.fixture(scope="module")
def workload_2d():
    from repro.bench import make_workload

    wl = make_workload(dim=2, target_dofs=578)
    return wl.factor, wl.bt


def _random_item(n: int, m: int, seed: int):
    factor = cholesky(random_spd(n, 0.1, seed), ordering="natural")
    bt = sp.random(n, m, density=0.2, random_state=seed, format="csc")
    return factor, bt


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


def test_fingerprint_ignores_values(workload_2d):
    factor, bt = workload_2d
    fp1 = factor_fingerprint(factor, bt)
    bt2 = bt.copy()
    bt2.data = bt2.data * 3.0  # same pattern, different values
    assert factor_fingerprint(factor, bt2).key == fp1.key


def test_fingerprint_sees_pattern_changes(workload_2d):
    factor, bt = workload_2d
    fp1 = factor_fingerprint(factor, bt)
    bt2 = sp.csc_matrix(bt.shape)
    assert factor_fingerprint(factor, bt2).key != fp1.key
    assert fp1.short() == fp1.key[:12]


def test_subdomain_fingerprint_groups_by_pattern():
    k1 = random_spd(20, 0.2, 1)
    k2 = k1.copy()
    k2.data = k2.data + 0.5  # same pattern
    bt = sp.random(20, 5, density=0.3, random_state=0, format="csc")
    a = subdomain_fingerprint(k1, bt, ordering="nd")
    b = subdomain_fingerprint(k2, bt, ordering="nd")
    c = subdomain_fingerprint(k1, bt, ordering="amd")
    assert a.key == b.key
    assert a.key != c.key


def test_pattern_digest_validates():
    with pytest.raises(ValueError, match="sparse"):
        pattern_digest(np.eye(3))


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------


def test_cache_hit_miss_counters():
    cache = PatternCache()
    v1, hit1 = cache.get_or_build("a", lambda: 1)
    v2, hit2 = cache.get_or_build("a", lambda: 2)
    assert (v1, hit1) == (1, False)
    assert (v2, hit2) == (1, True)
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.5
    assert "a" in cache and len(cache) == 1
    cache.clear()
    assert len(cache) == 0


def test_cache_lru_eviction():
    cache = PatternCache(max_entries=2)
    cache.get_or_build("a", lambda: 1)
    cache.get_or_build("b", lambda: 2)
    cache.get_or_build("a", lambda: 1)  # refresh a
    cache.get_or_build("c", lambda: 3)  # evicts b
    assert "b" not in cache and "a" in cache and "c" in cache
    assert cache.stats.evictions == 1


def test_cache_disabled():
    cache = PatternCache(max_entries=0)
    calls = []
    for _ in range(3):
        cache.get_or_build("a", lambda: calls.append(1))
    assert len(calls) == 3
    assert cache.stats.hits == 0 and cache.stats.misses == 3
    assert len(cache) == 0


def test_cache_validates():
    with pytest.raises(ValueError, match="max_entries"):
        PatternCache(max_entries=-1)


# ---------------------------------------------------------------------------
# pruning plan
# ---------------------------------------------------------------------------


def test_pruning_plan_matches_adhoc_scan(workload_2d):
    factor, bt = workload_2d
    cfg = default_config("gpu", 2)
    patt = FactorPattern.from_factor(factor)
    plan = PruningPlan.from_pattern(
        patt.indptr, patt.indices, factor.n, cfg.trsm_blocks.resolve(factor.n)
    )
    bt_rows = bt.tocsr()[factor.perm].tocsc()
    col_perm, shape = stepped_permutation(bt_rows)
    x1 = np.asarray(bt_rows[:, col_perm].toarray(), dtype=np.float64)
    x2 = x1.copy()
    ex1, ex2 = Executor(A100_40GB), Executor(A100_40GB)
    trsm_factor_split(ex1, factor.l, x1, shape, cfg.trsm_blocks, storage="sparse", prune=True)
    trsm_factor_split(
        ex2, factor.l, x2, shape, cfg.trsm_blocks, storage="sparse", prune=True, plan=plan
    )
    assert np.array_equal(x1, x2)
    assert ex1.elapsed == pytest.approx(ex2.elapsed)


def test_pruning_plan_rejects_mismatch(workload_2d):
    factor, bt = workload_2d
    cfg = default_config("gpu", 2)
    plan = PruningPlan(n=factor.n + 1, blocks=(), rows=(), nnz=())
    bt_rows = bt.tocsr()[factor.perm].tocsc()
    col_perm, shape = stepped_permutation(bt_rows)
    x = np.asarray(bt_rows[:, col_perm].toarray(), dtype=np.float64)
    with pytest.raises(ValueError, match="pruning plan"):
        trsm_factor_split(
            Executor(A100_40GB), factor.l, x, shape, cfg.trsm_blocks, plan=plan
        )


# ---------------------------------------------------------------------------
# symbolic-from-factor and pattern-level estimation
# ---------------------------------------------------------------------------


def test_symbolic_from_factor_consistent(workload_2d):
    factor, _ = workload_2d
    sym = symbolic_from_factor(factor.l)
    assert sym.n == factor.n
    assert sym.nnz_l == factor.l.nnz
    assert np.array_equal(np.asarray(sym.col_counts), np.diff(factor.l.tocsc().indptr))
    # Parent of each non-root column lies strictly below it.
    nonroot = np.flatnonzero(sym.parent >= 0)
    assert np.all(sym.parent[nonroot] > nonroot)
    # Row i's below-diagonal pattern matches the CSR row of L.
    lr = factor.l.tocsr()
    i = sym.n // 2
    cols = lr.indices[lr.indptr[i] : lr.indptr[i + 1]]
    assert np.array_equal(sym.row(i), np.sort(cols[cols < i]))
    # The digest is stable and pattern-sensitive.
    assert sym.pattern_digest() == symbolic_from_factor(factor.l).pattern_digest()


def test_estimate_from_patterns_matches_estimate_assembly(workload_2d):
    factor, bt = workload_2d
    cfg = default_config("gpu", 2)
    full = estimate_assembly(factor, bt, cfg, A100_40GB, PCIE4_X16)
    patt = FactorPattern.from_factor(factor)
    _, shape = stepped_permutation(bt.tocsr()[factor.perm].tocsc())
    split = estimate_from_patterns(patt, shape, cfg, A100_40GB, PCIE4_X16)
    assert full == split


# ---------------------------------------------------------------------------
# batch engine
# ---------------------------------------------------------------------------


def test_batch_identical_subdomains_analyze_once(workload_2d):
    factor, bt = workload_2d
    n = 8
    engine = BatchAssembler(config=default_config("gpu", 2))
    batch = engine.assemble_batch([BatchItem(factor, bt) for _ in range(n)])
    assert batch.stats.n_subdomains == n
    assert batch.stats.n_groups == 1
    assert batch.stats.misses == 1 and batch.stats.hits == n - 1
    assert batch.stats.hit_rate == pytest.approx((n - 1) / n)
    assert batch.stats.analysis_seconds_saved > 0
    # Numerics and simulated timings identical to independent assembly.
    ref = SchurAssembler(config=default_config("gpu", 2)).assemble(factor, bt)
    for res in batch.results:
        assert np.array_equal(res.f, ref.f)
        assert res.elapsed == pytest.approx(ref.elapsed)
    # Priced work agrees with the cached estimate and feeds the pipeline.
    est = engine.assembler.estimate(factor, bt)["total"]
    assert all(w.assembly == pytest.approx(est) for w in batch.work)
    pipe = engine.schedule(batch.work, mode="mix", n_threads=4, n_streams=4)
    assert pipe.makespan > 0
    assert batch.stats.throughput(pipe.makespan) > batch.stats.throughput()


def test_batch_all_unique_patterns_no_hits():
    items = [_random_item(16 + i, 4, seed=i) for i in range(4)]
    engine = BatchAssembler(config=default_config("gpu", 2))
    batch = engine.assemble_batch(items)
    assert batch.stats.n_groups == 4
    assert batch.stats.hits == 0
    assert batch.stats.hit_rate == 0.0
    assert batch.stats.analysis_seconds_saved == 0.0
    for (factor, bt), res in zip(items, batch.results):
        ref = SchurAssembler(config=default_config("gpu", 2)).assemble(factor, bt)
        assert np.array_equal(res.f, ref.f)


def test_batch_empty():
    engine = BatchAssembler()
    batch = engine.assemble_batch([])
    assert batch.results == [] and batch.work == []
    assert batch.stats.n_subdomains == 0
    assert batch.stats.hit_rate == 0.0
    assert batch.stats.preprocessing_seconds == 0.0
    assert batch.stats.throughput() == 0.0


def test_batch_zero_multiplier_bt(workload_2d):
    factor, _ = workload_2d
    bt0 = sp.csc_matrix((factor.n, 0))
    engine = BatchAssembler(config=default_config("gpu", 2))
    batch = engine.assemble_batch([(factor, bt0), (factor, bt0)])
    assert batch.stats.n_groups == 1
    for res in batch.results:
        assert res.f.shape == (0, 0)
    assert all(w.assembly >= 0.0 for w in batch.work)


def test_batch_estimate_only_mode(workload_2d):
    factor, bt = workload_2d
    engine = BatchAssembler()
    batch = engine.plan_batch([(factor, bt)] * 3)
    assert all(r is None for r in batch.results)
    assert len(batch.work) == 3
    assert batch.stats.assembly_seconds > 0


def test_batch_no_cache_baseline_charges_more(workload_2d):
    factor, bt = workload_2d
    items = [(factor, bt)] * 5
    cached = BatchAssembler().plan_batch(items)
    nocache = BatchAssembler(cache=PatternCache(max_entries=0)).plan_batch(items)
    assert nocache.stats.hits == 0
    assert nocache.stats.analysis_seconds > cached.stats.analysis_seconds
    assert nocache.stats.preprocessing_seconds > cached.stats.preprocessing_seconds
    # Only the analysis differs; the numeric stages are priced identically.
    assert nocache.stats.assembly_seconds == pytest.approx(cached.stats.assembly_seconds)


def test_batch_cpu_engine(workload_2d):
    factor, bt = workload_2d
    engine = BatchAssembler.for_cpu()
    batch = engine.assemble_batch([(factor, bt)] * 2)
    ref = SchurAssembler.for_cpu().assemble(factor, bt)
    for res in batch.results:
        assert np.array_equal(res.f, ref.f)
    pipe = engine.schedule(batch.work, n_threads=2, n_streams=0)
    assert pipe.makespan > 0


def test_batch_baseline_config(workload_2d):
    """The no-stepped baseline goes through the prepared path unchanged."""
    factor, bt = workload_2d
    cfg = baseline_config("sparse")
    engine = BatchAssembler(config=cfg)
    batch = engine.assemble_batch([(factor, bt)] * 2)
    ref = SchurAssembler(config=cfg).assemble(factor, bt)
    for res in batch.results:
        assert np.array_equal(res.f, ref.f)


def test_batch_shared_cache_across_engines(workload_2d):
    factor, bt = workload_2d
    cache = PatternCache()
    e1 = BatchAssembler(cache=cache)
    e2 = BatchAssembler(cache=cache)
    b1 = e1.assemble_batch([(factor, bt)], execute=False)
    b2 = e2.assemble_batch([(factor, bt)], execute=False)
    assert b1.stats.misses == 1
    assert b2.stats.hits == 1 and b2.stats.misses == 0


def test_batch_shared_cache_keys_by_device(workload_2d):
    """A GPU-priced estimate must not leak into a CPU engine sharing the
    same cache: the key mixes in the device/transfer identity."""
    factor, bt = workload_2d
    cache = PatternCache()
    gpu = BatchAssembler(cache=cache)
    cpu = BatchAssembler.for_cpu(cache=cache)
    bg = gpu.plan_batch([(factor, bt)])
    bc = cpu.plan_batch([(factor, bt)])
    assert bc.stats.misses == 1 and bc.stats.hits == 0  # no cross-device hit
    assert bg.work[0].assembly != pytest.approx(bc.work[0].assembly)
    assert bc.work[0].assembly == pytest.approx(
        cpu.assembler.estimate(factor, bt)["total"]
    )


def test_batch_artifacts_expose_symbolic(workload_2d):
    factor, bt = workload_2d
    engine = BatchAssembler()
    batch = engine.plan_batch([(factor, bt)])
    (art,) = batch.artifacts.values()
    assert art.symbolic.n == factor.n
    assert art.symbolic.nnz_l == factor.l.nnz
    assert art.symbolic.pattern_digest()  # hashable view present
    assert art.fingerprint.n == factor.n and art.fingerprint.m == bt.shape[1]


def test_cache_get_is_pure_peek():
    cache = PatternCache(max_entries=2)
    cache.get_or_build("a", lambda: 1)
    cache.get_or_build("b", lambda: 2)
    assert cache.get("a") == 1  # must NOT refresh LRU order
    cache.get_or_build("c", lambda: 3)  # evicts a (oldest), not b
    assert "a" not in cache and "b" in cache
    assert cache.get("ghost") is None
    assert cache.stats.hits == 0 and cache.stats.misses == 3


def test_batch_stats_merge_and_summary(workload_2d):
    factor, bt = workload_2d
    engine = BatchAssembler()
    s1 = engine.plan_batch([(factor, bt)] * 2).stats
    s2 = engine.plan_batch([(factor, bt)] * 3).stats
    merged = s1.merge(s2)
    assert merged.n_subdomains == 5
    assert merged.hits == s1.hits + s2.hits
    text = merged.summary()
    assert "hit rate" in text and "saved" in text


def test_symbolic_analysis_cost_scales():
    small = symbolic_analysis_cost(100, 500, 10, 50)
    large = symbolic_analysis_cost(10000, 500000, 1000, 5000)
    assert 0 < small < large


def test_batch_validates_inputs(workload_2d):
    factor, bt = workload_2d
    engine = BatchAssembler()
    with pytest.raises(ValueError, match="sparse"):
        engine.assemble_batch([(factor, bt.toarray())])


# ---------------------------------------------------------------------------
# population planning
# ---------------------------------------------------------------------------


def test_plan_population_groups(workload_2d):
    factor, bt = workload_2d
    pop = plan_population([(factor, bt)] * 4, dim=2, expected_iterations=50)
    assert pop.n_members == 4
    assert pop.n_groups == 1
    chosen = {pop.chosen_for(i) for i in range(4)}
    assert len(chosen) == 1
    single = pop.plan_for(0)
    assert single.chosen == next(iter(chosen))


def test_plan_population_distinct_patterns():
    members = [_random_item(18 + i, 4, seed=10 + i) for i in range(3)]
    pop = plan_population(members, dim=2, expected_iterations=10)
    assert pop.n_groups == 3


# ---------------------------------------------------------------------------
# canonical grouping on a real structured decomposition
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def floating_3x3():
    from repro.dd import decompose
    from repro.fem import heat_transfer_2d

    problem = heat_transfer_2d(12, dirichlet=())
    decomposition = decompose(problem, grid=(3, 3))
    return decomposition, items_from_decomposition(decomposition)


def test_subdomain_fingerprint_geometry_aware(workload_2d):
    factor, bt = workload_2d
    k = random_spd(factor.n, 0.1, 3)
    coords = np.random.default_rng(1).random((factor.n, 2))
    plain = subdomain_fingerprint(k, bt)
    geo = subdomain_fingerprint(k, bt, coords=coords)
    assert plain.key != geo.key  # frame digest is part of the key
    assert subdomain_fingerprint(k, bt, coords=coords + 3.5).key == geo.key
    with pytest.raises(ValueError, match="one row per DOF"):
        subdomain_fingerprint(k, bt, coords=coords[:-1])


def test_batch_engine_groups_structured_grid(floating_3x3):
    """A floating 3x3 decomposition has 9 subdomains in 9 translate-classes;
    the canonical relabeling collapses them to the 3 orientation classes
    (corner/edge/interior), whose members share one cache entry each."""
    decomposition, items = floating_3x3
    engine = BatchAssembler(config=default_config("gpu", 2))
    batch = engine.assemble_batch(items)
    assert batch.stats.n_subdomains == 9
    # No two subdomains of a 3x3 grid are translates (9 exact classes), but
    # the relabeled mirror images share: 3 executed canonical groups.
    assert batch.stats.n_exact_groups == 9
    assert batch.stats.n_groups == 3
    assert batch.stats.mirrors_shared == 6
    assert batch.stats.n_geometric_groups == 3
    assert set().union(*batch.geometric_groups.values()) == set(range(9))
    assert sorted(map(sorted, batch.groups.values())) == sorted(
        map(sorted, batch.geometric_groups.values())
    )
    # Results match the per-subdomain path (same factor, canonical columns
    # permuted back: identical arithmetic up to kernel association order).
    ref = SchurAssembler(config=default_config("gpu", 2))
    for it, res in zip(items, batch.results):
        expect = ref.assemble(it.factor, it.bt).f
        scale = max(1.0, float(np.abs(expect).max(initial=0.0)))
        assert np.allclose(res.f, expect, rtol=1e-9, atol=1e-10 * scale)


def test_batch_items_without_coords_skip_geometric_groups(workload_2d):
    factor, bt = workload_2d
    engine = BatchAssembler(config=default_config("gpu", 2))
    batch = engine.plan_batch([BatchItem(factor, bt), BatchItem(factor, bt)])
    assert batch.stats.n_geometric_groups == 0
    assert batch.geometric_groups == {}


def test_plan_population_geometric_grouping(floating_3x3):
    _, items = floating_3x3
    members = [(it.factor, it.bt) for it in items]
    coords = [it.coords for it in items]
    exact = plan_population(members, dim=2, expected_iterations=30)
    geo = plan_population(members, dim=2, expected_iterations=30, coords=coords)
    assert geo.n_groups == 3
    assert geo.n_groups <= exact.n_groups
    # Same approach decisions either way: pricing is isomorphism-invariant.
    assert [geo.chosen_for(i) for i in range(9)] == [
        exact.chosen_for(i) for i in range(9)
    ]
    with pytest.raises(ValueError, match="one coordinate array per member"):
        plan_population(members, dim=2, expected_iterations=30, coords=coords[:-1])


def test_geometric_fingerprint_not_an_exact_key(floating_3x3):
    """Members of one geometric class may have different exact patterns —
    the geometric key prices, the factor key caches."""
    decomposition, items = floating_3x3
    by_geo: dict[str, list[int]] = {}
    for i, it in enumerate(items):
        by_geo.setdefault(geometric_fingerprint(it.coords, it.bt).key, []).append(i)
    corner_class = next(v for v in by_geo.values() if len(v) == 4)
    exact = {factor_fingerprint(items[i].factor, items[i].bt).key for i in corner_class}
    assert len(exact) > 1
