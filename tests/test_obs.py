"""Tests for the unified tracing + metrics layer (:mod:`repro.obs`).

Covers the span model (nesting, thread-awareness, no-op fast path), the
metrics registry, the Chrome trace-event exporter (structural validation +
round-trip), the phase-tree/top-phases renderings, the migrated schedule
renderings behind their deprecation shim, and the end-to-end batch-engine
instrumentation acceptance criteria: an 8x8 floating grid traced through
grouped execution exports well-formed Perfetto JSON, the phase inclusive
times cover the measured wall clock, spans survive multi-threaded group
execution without loss, and the tracing-off overhead on assemble_batch
stays under 2%.
"""

from __future__ import annotations

import dataclasses
import json
import time

import numpy as np
import pytest

from repro.obs import (
    MetricsRegistry,
    NOOP_SPAN,
    Tracer,
    chrome_trace,
    gantt,
    get_tracer,
    load_chrome_trace,
    metrics_to_csv,
    phase_tree,
    record_batch_stats,
    record_cost_ledger,
    render_phase_tree,
    render_schedule,
    set_tracer,
    top_phases,
    tracing,
)


# -- span model -------------------------------------------------------------


def test_span_nesting_and_attrs():
    tracer = Tracer()
    with tracer.span("outer", kind="root") as outer:
        with tracer.span("inner") as inner:
            inner.set(detail=42)
    spans = tracer.spans()
    assert [s.name for s in spans] == ["inner", "outer"]  # closed in order
    inner_s, outer_s = spans
    assert inner_s.parent_id == outer_s.span_id
    assert outer_s.parent_id is None
    assert outer_s.attrs == {"kind": "root"}
    assert inner_s.attrs == {"detail": 42}
    assert 0.0 <= outer_s.start <= inner_s.start <= inner_s.end <= outer_s.end
    assert inner_s.cpu >= 0.0
    assert inner_s.track == outer_s.track == "host:0"


def test_disabled_tracer_is_noop():
    tracer = Tracer(enabled=False)
    span = tracer.span("anything", big=1)
    assert span is NOOP_SPAN  # shared singleton: zero allocation
    with span as s:
        s.set(more=2)
    tracer.add_span("virtual", start=0.0, end=1.0, track="sim:x")
    assert tracer.spans() == []


def test_default_tracer_disabled_and_scoped_tracing_restores():
    assert get_tracer().enabled is False
    with tracing() as tr:
        assert get_tracer() is tr
        assert tr.enabled
        with tr.span("x"):
            pass
    assert get_tracer().enabled is False
    assert len(tr.spans()) == 1


def test_set_tracer_roundtrip():
    t = Tracer()
    previous = set_tracer(t)
    try:
        assert get_tracer() is t
    finally:
        set_tracer(previous)
    assert get_tracer() is previous


def test_trace_window_via_mark():
    tracer = Tracer()
    with tracer.span("before"):
        pass
    mark = tracer.mark()
    with tracer.span("after"):
        pass
    window = tracer.trace(mark)
    assert [s.name for s in window.spans] == ["after"]
    assert window.total("after") > 0.0
    assert window.by_name("before") == []


# -- metrics ----------------------------------------------------------------


def test_metrics_registry_counters_gauges_histograms():
    reg = MetricsRegistry()
    reg.count("a")
    reg.count("a", 2.5)
    reg.gauge("g", 7.0)
    reg.observe("h", 3e-4)
    reg.observe("h", 2.0)
    snap = reg.to_dict()
    assert snap["counters"]["a"] == 3.5
    assert snap["gauges"]["g"] == 7.0
    hist = reg.histogram("h")
    assert hist.n == 2
    assert hist.total == pytest.approx(2.0003)
    assert sum(hist.counts) == 2
    # merge: counters/histograms add, gauges take the newer value
    other = MetricsRegistry()
    other.count("a", 1.0)
    other.gauge("g", 1.0)
    other.observe("h", 5e-4)
    reg.merge(other)
    assert reg.counter("a") == 4.5
    assert reg.to_dict()["gauges"]["g"] == 1.0
    assert reg.histogram("h").n == 3


def test_metrics_csv_dump():
    reg = MetricsRegistry()
    reg.count("batch.hits", 3)
    reg.observe("lat", 0.5)
    text = metrics_to_csv(reg)
    lines = text.strip().splitlines()
    assert lines[0] == "kind,name,value"
    assert "counter,batch.hits,3.0" in lines
    assert any(line.startswith("histogram,lat.sum") for line in lines)
    assert any(line.startswith("histogram,lat.bucket_le_") for line in lines)


def test_record_cost_ledger():
    from repro.gpu.costmodel import KernelCost
    from repro.gpu.runtime import Executor
    from repro.gpu.spec import EPYC_7763_CORE

    ex = Executor(EPYC_7763_CORE)
    ex.charge(KernelCost(flops=1e6, bytes_moved=1e4, launches=2, char_dim=100.0))
    reg = MetricsRegistry()
    record_cost_ledger(reg, ex.ledger)
    assert reg.counter("gpu.flops") == 1e6
    assert reg.counter("gpu.bytes_moved") == 1e4
    assert reg.counter("gpu.launches") == 2
    assert reg.counter("gpu.calls") == 1
    assert reg.counter("gpu.sim_seconds") == pytest.approx(ex.ledger.elapsed)


def test_record_batch_stats_covers_every_field():
    """Every current and future BatchStats field must land in the registry
    (strings and bools excluded by design, dicts as their value sum)."""
    from repro.batch.stats import BatchStats

    stats = BatchStats(
        n_subdomains=4,
        hits=3,
        analysis_seconds=0.5,
        group_execute_seconds={"a": 0.25, "b": 0.75},
        group_launches={"a": 2},
    )
    reg = MetricsRegistry()
    record_batch_stats(reg, stats)
    counters = reg.to_dict()["counters"]
    for f in dataclasses.fields(BatchStats):
        value = getattr(stats, f.name)
        if isinstance(value, (bool, str)):
            assert f"batch.{f.name}" not in counters
        elif isinstance(value, dict):
            assert counters[f"batch.{f.name}"] == pytest.approx(sum(value.values()))
        elif isinstance(value, (int, float)):
            assert counters[f"batch.{f.name}"] == pytest.approx(float(value))
        else:
            pytest.fail(
                f"BatchStats.{f.name} has unhandled type {type(value).__name__}; "
                "teach repro.obs.metrics.record_batch_stats (and this test) "
                "how to absorb it"
            )


def test_batch_stats_merge_is_complete():
    """merge() must aggregate every dataclass field — a new field silently
    dropped by merge() fails here, not in production."""
    from repro.batch.stats import BatchStats

    a_kwargs, b_kwargs = {}, {}
    for i, f in enumerate(dataclasses.fields(BatchStats)):
        if f.name == "execution":
            a_kwargs[f.name] = "grouped"
            b_kwargs[f.name] = "per-member"
        elif f.type in ("int", "float") or isinstance(f.default, (int, float)):
            a_kwargs[f.name] = 2 * i + 1
            b_kwargs[f.name] = 1000 + i
        elif "dict" in str(f.type):
            a_kwargs[f.name] = {"x": 2 * i + 1, "y": 1}
            b_kwargs[f.name] = {"x": 1000 + i, "z": 2}
        else:
            pytest.fail(
                f"BatchStats.{f.name} has unrecognized type {f.type!r}; "
                "extend BatchStats.merge and this test together"
            )
    a, b = BatchStats(**a_kwargs), BatchStats(**b_kwargs)
    merged = a.merge(b)
    for f in dataclasses.fields(BatchStats):
        got = getattr(merged, f.name)
        if f.name == "execution":
            assert got == "mixed"  # differing modes merge to the sentinel
        elif isinstance(got, dict):
            expected = dict(a_kwargs[f.name])
            for k, v in b_kwargs[f.name].items():
                expected[k] = expected.get(k, 0) + v
            assert got == expected, f"dict field {f.name} not merged"
        else:
            assert got == a_kwargs[f.name] + b_kwargs[f.name], (
                f"BatchStats.merge drops field {f.name!r}"
            )


# -- exporters --------------------------------------------------------------


def _validate_chrome_events(events):
    """Per tid: metadata first is not required, but B/E streams must be
    stack-disciplined with non-decreasing timestamps."""
    names = {}
    stacks: dict[int, list[str]] = {}
    last_ts: dict[int, float] = {}
    for ev in events:
        if ev.get("ph") == "M":
            assert ev["name"] == "thread_name"
            names[ev["tid"]] = ev["args"]["name"]
            continue
        assert ev["ph"] in ("B", "E")
        tid = ev["tid"]
        assert tid in names, f"events on unnamed tid {tid}"
        assert ev["ts"] >= last_ts.get(tid, float("-inf")), "timestamps regress"
        last_ts[tid] = ev["ts"]
        stack = stacks.setdefault(tid, [])
        if ev["ph"] == "B":
            stack.append(ev["name"])
        else:
            assert stack, f"E without B on tid {tid}"
            assert stack.pop() == ev["name"], "mismatched B/E pair"
    assert all(not s for s in stacks.values()), "unclosed B events"
    return names


def test_chrome_trace_virtual_and_host_tracks():
    tracer = Tracer()
    with tracer.span("host-work"):
        tracer.add_span("k1", start=0.0, end=1.0, track="sim:gpu:a#0", flops=10)
        tracer.add_span("k2", start=1.0, end=2.5, track="sim:gpu:a#0")
    data = chrome_trace(tracer.spans(), metrics=tracer.metrics)
    names = _validate_chrome_events(data["traceEvents"])
    assert sorted(names.values()) == ["host:0", "sim:gpu:a#0"]
    assert list(names.values())[0] == "host:0"  # host tracks sort first
    b = [e for e in data["traceEvents"] if e.get("ph") == "B" and e["name"] == "k1"]
    assert b[0]["args"]["flops"] == 10
    assert data["otherData"]["metrics"]["counters"] == {}


def test_chrome_trace_adjacent_siblings_not_nested():
    """A sibling starting exactly where the last one ended must close the
    first span before opening the second (the <= pop rule)."""
    tracer = Tracer()
    tracer.add_span("a", start=0.0, end=1.0, track="sim:x")
    tracer.add_span("b", start=1.0, end=2.0, track="sim:x")
    events = [e for e in chrome_trace(tracer.spans())["traceEvents"] if e["ph"] != "M"]
    assert [(e["ph"], e["name"]) for e in events] == [
        ("B", "a"), ("E", "a"), ("B", "b"), ("E", "b"),
    ]


def test_chrome_trace_roundtrip(tmp_path):
    tracer = Tracer()
    tracer.metrics.count("k", 2)
    with tracer.span("outer"):
        with tracer.span("inner", x=1):
            pass
    path = tmp_path / "trace.json"
    trace = tracer.trace()
    trace.save(path)
    spans, metrics = load_chrome_trace(path)
    assert {s.name for s in spans} == {"outer", "inner"}
    inner = next(s for s in spans if s.name == "inner")
    outer = next(s for s in spans if s.name == "outer")
    assert inner.parent_id == outer.span_id  # parentage from B/E nesting
    assert inner.attrs["x"] == 1
    assert inner.duration == pytest.approx(
        trace.by_name("inner")[0].duration, abs=1e-9
    )
    assert metrics["counters"]["k"] == 2


def test_load_chrome_trace_rejects_malformed(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({
        "traceEvents": [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": 1,
             "args": {"name": "host:0"}},
            {"name": "a", "ph": "B", "pid": 0, "tid": 1, "ts": 0.0},
        ]
    }))
    with pytest.raises(ValueError, match="unclosed"):
        load_chrome_trace(path)


# -- phase tree / top phases ------------------------------------------------


def _make_phase_spans():
    tracer = Tracer()
    with tracer.span("assemble"):
        with tracer.span("analyze"):
            time.sleep(0.002)
        with tracer.span("execute"):
            time.sleep(0.001)
    tracer.add_span("kernel", start=0.0, end=5.0, track="sim:x")
    return tracer.spans()


def test_phase_tree_aggregation():
    spans = _make_phase_spans()
    root = phase_tree(spans)
    assert set(root.children) == {"assemble", "kernel"}
    assemble = root.children["assemble"]
    assert set(assemble.children) == {"analyze", "execute"}
    assert assemble.inclusive >= (
        assemble.children["analyze"].inclusive
        + assemble.children["execute"].inclusive
    )
    assert assemble.self_seconds >= 0.0
    # root inclusive sums only parentless spans: assemble + the sim kernel
    assert root.inclusive == pytest.approx(
        assemble.inclusive + root.children["kernel"].inclusive
    )
    text = render_phase_tree(root)
    assert "assemble" in text and "kernel" in text
    shallow = render_phase_tree(root, max_depth=1)
    assert "analyze" not in shallow


def test_top_phases_ranking():
    spans = _make_phase_spans()
    ranked = top_phases(spans, n=2)
    assert len(ranked) == 2
    assert ranked[0][0] == "kernel"  # 5 simulated seconds dominates
    assert ranked[0][1] == pytest.approx(5.0)
    assert ranked[0][2] == 1


# -- migrated schedule renderings + deprecation shim ------------------------


def _schedule(n_tasks: int, duration: float = 1.0, n_cpu: int = 2):
    from repro.runtime import Task, schedule_tasks

    tasks = [Task(f"t{i}", duration, "cpu") for i in range(n_tasks)]
    return schedule_tasks(tasks, n_cpu=n_cpu, n_gpu=1)


def test_render_schedule_empty():
    schedule = _schedule(0)
    text = render_schedule(schedule)
    assert "makespan" in text
    assert gantt(schedule, "cpu", 2) == "(empty schedule)"


def test_render_schedule_overflow_truncates():
    schedule = _schedule(7)
    text = render_schedule(schedule, max_rows=3)
    assert "... (4 more tasks)" in text
    assert "t6" not in text.split("...")[0]


def test_gantt_paints_worker_rows():
    schedule = _schedule(4, duration=1.0, n_cpu=2)
    chart = gantt(schedule, "cpu", 2, width=20)
    lines = chart.splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("cpu[0] |")
    # 2 workers, 4 unit tasks: both rows fully painted with task-id marks
    for line in lines:
        body = line.split("|")[1]
        assert set(body) <= set("0123")
        assert " " not in body
    with pytest.raises(ValueError):
        gantt(schedule, "cpu", 2, width=5)


def test_runtime_trace_shim_warns_and_matches():
    import repro.runtime.trace as shim
    from repro.obs.render import render_schedule as direct

    schedule = _schedule(3)
    with pytest.warns(DeprecationWarning, match="repro.obs.render"):
        via_shim = shim.render_schedule(schedule)
    assert via_shim == direct(schedule)
    with pytest.warns(DeprecationWarning):
        assert shim.gantt(schedule, "cpu", 2) == gantt(schedule, "cpu", 2)


# -- end-to-end batch instrumentation ---------------------------------------


@pytest.fixture(scope="module")
def floating_8x8_items():
    from repro.batch import items_from_decomposition
    from repro.dd import decompose
    from repro.fem import heat_transfer_2d

    problem = heat_transfer_2d(16, dirichlet=())
    return items_from_decomposition(decompose(problem, grid=(8, 8)))


def _engine():
    from repro.batch import BatchAssembler
    from repro.core import default_config

    return BatchAssembler(config=default_config("gpu", 2))


def test_traced_grouped_batch_exports_valid_chrome_json(
    floating_8x8_items, tmp_path
):
    with tracing():
        result = _engine().assemble_batch(
            floating_8x8_items, execution="grouped", n_workers=2
        )
    assert result.trace is not None
    path = result.trace.save(tmp_path / "batch.json")
    data = json.loads(open(path).read())
    names = _validate_chrome_events(data["traceEvents"])
    tracks = set(names.values())
    hosts = {t for t in tracks if t.startswith("host:")}
    sims = {t for t in tracks if t.startswith("sim:")}
    # main thread + at least one pool worker; one sim track per group executor
    assert "host:0" in hosts and len(hosts) >= 2
    assert len(sims) == result.stats.n_groups
    assert data["otherData"]["metrics"]["counters"]["batch.n_subdomains"] == 64
    # the root phase hierarchy made it out intact
    span_names = {s.name for s in result.trace.spans}
    assert {"batch.assemble", "batch.analyze", "batch.execute",
            "batch.group", "batch.fingerprint", "batch.unrelabel"} <= span_names
    assert any(n.startswith("gpu.batched_") for n in span_names)


def test_phase_inclusive_times_cover_wall(floating_8x8_items):
    """The batch.assemble phases (analyze + execute + unrelabel) must cover
    the engine's own measured wall clock within 5%."""
    with tracing():
        result = _engine().assemble_batch(
            floating_8x8_items, execution="grouped", n_workers=1
        )
    trace = result.trace
    covered = trace.total("batch.analyze", "batch.execute", "batch.unrelabel")
    wall = result.stats.wall_seconds
    assert covered <= wall * 1.001
    assert covered >= 0.95 * wall, (
        f"phases cover only {covered / wall:.1%} of wall ({covered:.4f}s "
        f"of {wall:.4f}s) — instrumentation gap"
    )


def test_worker_thread_spans_consistent_and_none_lost(floating_8x8_items):
    """Stress the tracer across the grouped ThreadPoolExecutor fan-out:
    parentage stays intra-thread-consistent, every group records exactly
    one span, and the registry counters equal BatchStats exactly."""
    with tracing() as tr:
        result = _engine().assemble_batch(
            floating_8x8_items, execution="grouped", n_workers=4
        )
    spans = result.trace.spans
    by_id = {s.span_id: s for s in spans}
    assert len(by_id) == len(spans), "span ids collide across threads"
    for s in spans:
        if s.parent_id is not None and s.parent_id in by_id:
            assert by_id[s.parent_id].track == s.track, (
                "parent and child on different tracks — cross-thread leak"
            )
    stats = result.stats
    groups = [s for s in spans if s.name == "batch.group"]
    assert len(groups) == stats.n_groups, "lost a group span"
    assert sum(s.attrs["n_members"] for s in groups) == stats.n_subdomains
    assert len([s for s in spans if s.name == "batch.fingerprint"]) == 64
    # counters mirror BatchStats exactly (same introspection both sides)
    for name, expected in [
        ("batch.n_subdomains", stats.n_subdomains),
        ("batch.n_groups", stats.n_groups),
        ("batch.hits", stats.hits),
        ("batch.misses", stats.misses),
        ("batch.kernel_launches", stats.kernel_launches),
    ]:
        assert tr.metrics.counter(name) == float(expected), name


def test_tracing_off_overhead_under_two_percent(floating_8x8_items):
    """Deterministic overhead bound: (spans an enabled run would record) x
    (measured cost of one disabled-tracer span call) must stay under 2% of
    the untraced wall clock.  Avoids flaky A/B wall-clock comparisons."""
    engine = _engine()
    t0 = time.perf_counter()
    engine.assemble_batch(floating_8x8_items, execution="grouped", n_workers=1)
    untraced_wall = time.perf_counter() - t0

    with tracing() as tr:
        engine.assemble_batch(floating_8x8_items, execution="grouped", n_workers=1)
    n_events = len(tr.spans())

    disabled = get_tracer()
    assert not disabled.enabled
    n = 20000
    t0 = time.perf_counter()
    for _ in range(n):
        with disabled.span("probe", idx=0):
            pass
    per_noop = (time.perf_counter() - t0) / n

    overhead = n_events * per_noop
    assert overhead < 0.02 * untraced_wall, (
        f"{n_events} instrumentation sites x {per_noop * 1e9:.0f} ns/noop = "
        f"{overhead * 1e3:.3f} ms >= 2% of {untraced_wall * 1e3:.1f} ms"
    )


def test_batch_result_trace_none_when_tracing_off(floating_8x8_items):
    result = _engine().assemble_batch(floating_8x8_items[:4])
    assert result.trace is None


# -- layer instrumentation: part / sparse / pcpg / gpu ----------------------


def test_partitioner_spans():
    from repro.part import jittered_square_mesh, partition_mesh

    mesh = jittered_square_mesh(8)
    with tracing() as tr:
        partition_mesh(mesh, 4)
    names = [s.name for s in tr.spans()]
    assert "part.partition" in names
    assert "part.dual_graph" in names
    assert "part.repair" in names and "part.rebalance" in names
    assert "part.refine" in names
    # recursive bisection: 4 parts = 3 internal bisections
    assert names.count("part.bisect") == 3


def test_pcpg_iteration_spans():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((12, 12))
    f = a @ a.T + 12.0 * np.eye(12)
    g = rng.standard_normal((12, 2))
    with tracing() as tr:
        from repro.feti.pcpg import pcpg

        res = pcpg(
            lambda x: f @ x,
            rng.standard_normal(12),
            g,
            rng.standard_normal(2),
            tol=1e-8,
        )
    solves = [s for s in tr.spans() if s.name == "pcpg.solve"]
    iters = [s for s in tr.spans() if s.name == "pcpg.iteration"]
    assert len(solves) == 1
    assert solves[0].attrs["converged"] is True
    assert len(iters) == res.iterations
    assert [s.attrs["iteration"] for s in iters] == list(
        range(1, res.iterations + 1)
    )
    assert all("residual" in s.attrs for s in iters)


def test_sparse_and_gpu_kernel_spans():
    import scipy.sparse as sp

    from repro.gpu.runtime import Executor
    from repro.gpu.spec import A100_40GB
    from repro.sparse.cholesky import cholesky

    a = sp.diags([4.0] * 20) + sp.eye(20, k=1) + sp.eye(20, k=-1)
    with tracing() as tr:
        factor = cholesky(sp.csc_matrix(a))
        ex = Executor(A100_40GB)
        l = np.tril(np.ones((8, 8))) + 7.0 * np.eye(8)
        ex.trsm_dense(l, np.ones((8, 3)))
        ex.syrk(np.ones((8, 3)), np.zeros((3, 3)))
    names = [s.name for s in tr.spans()]
    assert "sparse.cholesky" in names
    chol = next(s for s in tr.spans() if s.name == "sparse.cholesky")
    assert chol.attrs["nnz_l"] == factor.l.nnz
    kernels = [s for s in tr.spans() if s.track.startswith("sim:")]
    assert [s.name for s in kernels] == ["gpu.trsm_dense", "gpu.syrk"]
    # simulated timestamps: sequential on the executor's ledger timeline
    assert kernels[0].start == 0.0
    assert kernels[1].start == pytest.approx(kernels[0].end)
    assert tr.metrics.histogram("gpu.kernel_sim_seconds").n == 2


# -- histogram percentiles / lenient trace reading (fleet observability) ----


def test_histogram_percentiles_and_minmax():
    from repro.obs.metrics import Histogram

    h = Histogram(boundaries=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 1.5, 3.0, 10.0):
        h.observe(v)
    assert h.vmin == 0.5 and h.vmax == 10.0
    assert 0.5 <= h.percentile(50) <= 2.0
    assert h.percentile(99) <= 10.0  # overflow bucket clamped to vmax
    assert h.percentile(0) >= 0.5  # first bucket clamped to vmin
    snap = h.to_dict()
    assert snap["min"] == 0.5 and snap["max"] == 10.0
    assert set(snap) >= {"p50", "p90", "p99"}


def test_histogram_single_observation_percentiles_exact():
    from repro.obs.metrics import Histogram

    h = Histogram()
    h.observe(0.123)
    for q in (1, 50, 99):
        assert h.percentile(q) == pytest.approx(0.123)


def test_histogram_merge_matches_combined_observe():
    from repro.obs.metrics import Histogram

    values_a, values_b = (0.1, 0.4, 2.0), (0.2, 8.0)
    a, b, combined = Histogram(), Histogram(), Histogram()
    for v in values_a:
        a.observe(v)
        combined.observe(v)
    for v in values_b:
        b.observe(v)
        combined.observe(v)
    a.merge(b)
    assert a.to_dict() == combined.to_dict()


def test_histogram_from_dict_roundtrip_and_old_snapshots():
    from repro.obs.metrics import Histogram

    h = Histogram()
    for v in (0.01, 0.5, 3.0):
        h.observe(v)
    again = Histogram.from_dict(h.to_dict())
    assert again.to_dict() == h.to_dict()
    # pre-percentile snapshot (no min/max keys): loads, tracks None
    old = {"boundaries": [1.0], "counts": [2, 1], "total": 4.0, "n": 3}
    loaded = Histogram.from_dict(old)
    assert loaded.n == 3 and loaded.vmin is None


def test_registry_from_dict_roundtrip():
    registry = MetricsRegistry()
    registry.count("jobs", 4)
    registry.gauge("depth", 2.0)
    registry.observe("latency", 0.2)
    snap = registry.to_dict()
    assert MetricsRegistry.from_dict(snap).to_dict() == snap


def test_read_trace_metrics_only_file(tmp_path):
    from repro.obs import read_trace, write_metrics

    registry = MetricsRegistry()
    registry.count("store.hits", 7)
    path = tmp_path / "metrics.json"
    write_metrics(path, registry)
    loaded = read_trace(path)
    assert loaded.spans == []
    assert loaded.metrics["counters"]["store.hits"] == 7
    assert any("metrics-only" in w for w in loaded.warnings)
    with pytest.raises(ValueError, match="metrics-only"):
        read_trace(path, strict=True)


def test_read_trace_partial_file_closes_dangling_spans(tmp_path):
    from repro.obs import read_trace

    path = tmp_path / "partial.json"
    path.write_text(json.dumps({
        "traceEvents": [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": 1,
             "args": {"name": "host:0"}},
            {"name": "worker.run", "ph": "B", "pid": 0, "tid": 1, "ts": 0.0},
            {"name": "worker.job", "ph": "B", "pid": 0, "tid": 1, "ts": 1e6},
            # crashed mid-job: no E events ever written
        ]
    }))
    loaded = read_trace(path)
    assert {s.name for s in loaded.spans} == {"worker.run", "worker.job"}
    job = next(s for s in loaded.spans if s.name == "worker.job")
    assert job.attrs.get("unclosed") is True
    assert job.end == pytest.approx(1.0)  # closed at the last timestamp
    assert any("dangling" in w for w in loaded.warnings)


def test_read_trace_skips_unbalanced_and_mismatched_events(tmp_path):
    from repro.obs import read_trace

    path = tmp_path / "mangled.json"
    path.write_text(json.dumps({
        "traceEvents": [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": 1,
             "args": {"name": "host:0"}},
            {"name": "ghost", "ph": "E", "pid": 0, "tid": 1, "ts": 0.5e6},
            {"name": "a", "ph": "B", "pid": 0, "tid": 1, "ts": 1e6},
            {"name": "zzz", "ph": "E", "pid": 0, "tid": 1, "ts": 1.5e6},
            {"name": "a", "ph": "E", "pid": 0, "tid": 1, "ts": 2e6},
        ]
    }))
    loaded = read_trace(path)
    (a,) = loaded.spans
    assert a.name == "a" and a.end == pytest.approx(2.0)
    assert len(loaded.warnings) == 2
    with pytest.raises(ValueError):
        read_trace(path, strict=True)


def test_trace_meta_carries_identity_and_clock_anchor(tmp_path):
    from repro.obs import read_trace

    tracer = Tracer(enabled=True, trace_id="cafe" * 8)
    with tracer.span("x"):
        pass
    path = tmp_path / "t.json"
    tracer.trace(worker="w9").save(path)
    loaded = read_trace(path)
    assert loaded.meta["trace_id"] == "cafe" * 8
    assert loaded.meta["worker"] == "w9"
    assert loaded.meta["epoch_unix"] == pytest.approx(tracer.epoch_unix)
    assert loaded.worker == "w9"


def test_current_context_namespaced_by_process_tag():
    tracer = Tracer(enabled=True)
    assert tracer.current_context().span_id == ""  # no open span
    with tracer.span("outer") as outer:
        ctx = tracer.current_context()
        assert ctx.trace_id == tracer.trace_id
        assert ctx.span_id == f"{tracer.tag}:{outer.span_id}"
    disabled = Tracer(enabled=False)
    ctx = disabled.current_context()
    assert ctx.trace_id == disabled.trace_id and ctx.span_id == ""
