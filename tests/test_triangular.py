"""Tests for triangular solves (dense RHS backends + sparse-RHS Gilbert–Peierls)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    TriangularSolver,
    cholesky,
    solve_lower,
    solve_upper,
    spsolve_lower_sparse,
)
from tests.conftest import laplacian_2d, random_spd

BACKENDS = ["python", "superlu", "dense", "auto"]


def _factor(n=60, seed=0):
    return cholesky(random_spd(n, density=0.08, seed=seed), ordering="amd").l


@pytest.mark.parametrize("method", BACKENDS)
def test_solve_lower_matrix_rhs(method, rng):
    l = _factor()
    b = rng.standard_normal((60, 5))
    x = solve_lower(l, b, method=method)
    assert np.allclose(l @ x, b, atol=1e-9)


@pytest.mark.parametrize("method", BACKENDS)
def test_solve_upper_matrix_rhs(method, rng):
    l = _factor()
    b = rng.standard_normal((60, 5))
    x = solve_upper(l, b, method=method)
    assert np.allclose(l.T @ x, b, atol=1e-9)


@pytest.mark.parametrize("method", BACKENDS)
def test_solve_vector_rhs_shape(method, rng):
    l = _factor()
    b = rng.standard_normal(60)
    x = solve_lower(l, b, method=method)
    assert x.shape == (60,)
    assert np.allclose(l @ x, b, atol=1e-9)


def test_backends_agree(rng):
    l = _factor(80, seed=5)
    b = rng.standard_normal((80, 3))
    xs = [solve_lower(l, b, method=m) for m in ("python", "superlu", "dense")]
    for x in xs[1:]:
        assert np.allclose(x, xs[0], atol=1e-9)


def test_rhs_dimension_mismatch():
    l = _factor()
    with pytest.raises(ValueError, match="rows"):
        solve_lower(l, np.ones((59, 2)))


def test_unknown_backend():
    l = _factor()
    with pytest.raises(ValueError, match="unknown method"):
        solve_lower(l, np.ones(60), method="magma")


def test_python_backend_rejects_zero_diagonal():
    l = sp.csc_matrix(np.array([[1.0, 0.0], [1.0, 0.0]]))
    with pytest.raises(ValueError, match="diagonal"):
        solve_lower(l, np.ones(2), method="python")


def test_rejects_non_lower_triangular():
    a = sp.csc_matrix(np.array([[1.0, 2.0], [0.5, 1.0]]))
    with pytest.raises(ValueError, match="above the diagonal"):
        solve_lower(a, np.ones(2), method="python")


def test_triangular_solver_cached_reuse(rng):
    l = _factor()
    solver = TriangularSolver(l)
    b1 = rng.standard_normal(60)
    b2 = rng.standard_normal((60, 2))
    assert np.allclose(l @ solver.solve(b1), b1, atol=1e-9)
    assert np.allclose(l.T @ solver.solve(b2, transpose=True), b2, atol=1e-9)


def test_spsolve_lower_sparse_matches_dense(rng):
    l = _factor(70, seed=2)
    b = sp.random(70, 8, density=0.07, random_state=3, format="csc")
    y, flops = spsolve_lower_sparse(l, b)
    dense = solve_lower(l, b.toarray(), method="dense")
    assert np.allclose(y.toarray(), dense, atol=1e-9)
    assert flops > 0


def test_spsolve_sparse_rhs_zero_column():
    l = _factor(20, seed=1)
    b = sp.csc_matrix((20, 3))  # all-zero RHS
    y, flops = spsolve_lower_sparse(l, b)
    assert y.nnz == 0
    assert flops == 0


def test_spsolve_reach_is_sparse():
    """With a tridiagonal factor, solving e_k touches only rows >= k."""
    n = 30
    l = cholesky(laplacian_2d(1, n) + sp.eye(n) * 0, ordering="natural").l
    b = sp.csc_matrix(([1.0], ([n - 2], [0])), shape=(n, 1))
    y, _ = spsolve_lower_sparse(l, b)
    assert set(y.tocoo().row.tolist()) <= {n - 2, n - 1}


def test_spsolve_flops_less_than_full_solve():
    """Sparse-RHS flops must be far below the dense-RHS equivalent for a
    local RHS (this is the whole point of the augmented approach)."""
    l = _factor(100, seed=4)
    b = sp.csc_matrix(([1.0], ([99], [0])), shape=(100, 1))
    _, flops = spsolve_lower_sparse(l, b)
    assert flops <= 2.0 * l.nnz  # full solve would be ~2 nnz(L)


def test_spsolve_rejects_wrong_rows():
    l = _factor(10, seed=6)
    with pytest.raises(ValueError):
        spsolve_lower_sparse(l, sp.csc_matrix((9, 1)))


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    m=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_forward_backward_roundtrip(n, m, seed):
    """x == L^{-T}(L^{-1}(L L^T x)) for random SPD factors."""
    l = cholesky(random_spd(n, density=min(1.0, 5.0 / n), seed=seed)).l
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, m))
    b = (l @ (l.T @ x))
    y = solve_lower(l, b, method="python")
    x2 = solve_upper(l, y, method="python")
    assert np.allclose(x2, x, atol=1e-7)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=25),
    seed=st.integers(min_value=0, max_value=10_000),
    density=st.floats(min_value=0.05, max_value=0.5),
)
def test_property_spsolve_matches_dense(n, seed, density):
    l = cholesky(random_spd(n, density=min(1.0, 5.0 / n), seed=seed)).l
    b = sp.random(n, 3, density=density, random_state=seed, format="csc")
    y, _ = spsolve_lower_sparse(l, b)
    assert np.allclose(l @ y.toarray(), b.toarray(), atol=1e-8)


# ---------------------------------------------------------------------------
# solver memoization (superlu path) and the configurable dense cutoff
# ---------------------------------------------------------------------------


def test_superlu_solver_memoized_per_factor(rng):
    from repro.sparse import triangular as tri

    l = _factor(40, seed=7)
    b = rng.standard_normal((40, 2))
    with tri._solver_cache_lock:
        tri._solver_cache.clear()
    x1 = solve_lower(l, b, method="superlu")
    solver_first = tri._solver_cache[id(l)][2]
    x2 = solve_lower(l, b, method="superlu")
    assert tri._solver_cache[id(l)][2] is solver_first  # reused, not rebuilt
    assert np.array_equal(x1, x2)
    # A different factor object gets its own entry.
    l2 = _factor(40, seed=8)
    solve_upper(l2, b, method="superlu")
    assert tri._solver_cache[id(l2)][2] is not solver_first


def test_cached_solver_identity_and_equivalence(rng):
    from repro.sparse import cached_triangular_solver

    l = _factor(30, seed=3)
    s1 = cached_triangular_solver(l)
    s2 = cached_triangular_solver(l)
    assert s1 is s2
    b = rng.standard_normal(30)
    assert np.allclose(s1.solve(b), TriangularSolver(l).solve(b))


def test_cached_solver_rebuilds_on_value_mutation(rng):
    """In-place value mutation must rebuild, never return stale numerics."""
    from repro.sparse import cached_triangular_solver

    l = _factor(25, seed=4)
    b = rng.standard_normal(25)
    s1 = cached_triangular_solver(l)
    l.data *= 2.0
    s2 = cached_triangular_solver(l)
    assert s2 is not s1
    x = solve_lower(l, b, method="superlu")
    assert np.allclose(l @ x, b, atol=1e-9)  # solved against the NEW values


def test_solver_cache_is_bounded():
    from repro.sparse import triangular as tri
    from repro.sparse.triangular import SOLVER_CACHE_MAX_ENTRIES, cached_triangular_solver

    with tri._solver_cache_lock:
        tri._solver_cache.clear()
    keep = [_factor(12, seed=100 + i) for i in range(SOLVER_CACHE_MAX_ENTRIES + 5)]
    for l in keep:
        cached_triangular_solver(l)
    assert len(tri._solver_cache) == SOLVER_CACHE_MAX_ENTRIES
    # The most recent factors survived (LRU evicts the oldest).
    assert id(keep[-1]) in tri._solver_cache
    assert id(keep[0]) not in tri._solver_cache


def test_dense_cutoff_get_set_roundtrip():
    from repro.sparse import get_dense_cutoff, set_dense_cutoff

    original = get_dense_cutoff()
    try:
        assert set_dense_cutoff(7) == original
        assert get_dense_cutoff() == 7
        with pytest.raises(ValueError, match="cutoff"):
            set_dense_cutoff(-1)
        assert get_dense_cutoff() == 7  # rejected values leave state intact
    finally:
        set_dense_cutoff(original)


def test_auto_backend_respects_cutoff(rng, monkeypatch):
    """With cutoff 0 every auto solve goes through SuperLU; with a huge
    cutoff, through dense LAPACK — observable via the solver cache."""
    from repro.sparse import set_dense_cutoff
    from repro.sparse import triangular as tri

    l = _factor(25, seed=9)
    b = rng.standard_normal((25, 2))
    original = tri.get_dense_cutoff()
    try:
        with tri._solver_cache_lock:
            tri._solver_cache.clear()
        set_dense_cutoff(10_000)
        solve_lower(l, b, method="auto")
        assert id(l) not in tri._solver_cache  # dense path: no SuperLU built
        set_dense_cutoff(0)
        solve_lower(l, b, method="auto")
        assert id(l) in tri._solver_cache  # superlu path: solver memoized
    finally:
        set_dense_cutoff(original)


def test_measure_and_tune_dense_cutoff():
    from repro.core.tuning import (
        CrossoverPoint,
        measure_dense_crossover,
        pick_dense_cutoff,
        tune_dense_cutoff,
    )
    from repro.sparse import get_dense_cutoff, set_dense_cutoff

    points = measure_dense_crossover(sizes=(16, 64), n_rhs=2, repeats=1)
    assert [p.n for p in points] == [16, 64]
    assert all(p.dense_seconds > 0 and p.superlu_seconds > 0 for p in points)
    # pick_dense_cutoff: largest dense-winning size, 0 when superlu always wins.
    fake = [
        CrossoverPoint(n=16, dense_seconds=1.0, superlu_seconds=2.0),
        CrossoverPoint(n=64, dense_seconds=3.0, superlu_seconds=1.0),
    ]
    assert pick_dense_cutoff(fake) == 16
    assert (
        pick_dense_cutoff([CrossoverPoint(n=8, dense_seconds=2.0, superlu_seconds=1.0)])
        == 0
    )
    # A noisy dense win above the true crossover must not drag the cutoff up.
    noisy = fake + [CrossoverPoint(n=1024, dense_seconds=1.0, superlu_seconds=5.0)]
    assert pick_dense_cutoff(noisy) == 16
    original = get_dense_cutoff()
    try:
        measured = tune_dense_cutoff(sizes=(16, 32), n_rhs=2, repeats=1, apply=True)
        assert get_dense_cutoff() == measured
        assert tune_dense_cutoff(sizes=(16,), n_rhs=2, repeats=1, apply=False) >= 0
        assert get_dense_cutoff() == measured  # apply=False leaves state alone
    finally:
        set_dense_cutoff(original)
