"""Fleet-wide distributed tracing + metrics aggregation tests.

Pins the contracts of :mod:`repro.obs.fleet` and the trace-context
propagation through the work queue:

* merging N per-worker traces preserves every worker's spans and sums
  every worker's counters (the counter-summation invariant: fleet totals
  equal what one process doing all the work would have counted),
* host timestamps align onto one wall clock via the recorded
  ``epoch_unix`` anchors; simulated (``sim:*``) tracks are never shifted,
* a job's trace context survives a worker crash — the reclaiming worker's
  span links back to the *original* submit context,
* metrics-snapshot merging is associative and commutative (any merge
  order over any partition of workers yields the same registry).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    MetricsRegistry,
    Span,
    TraceFile,
    Tracer,
    fleet_chrome_trace,
    fleet_report,
    fleet_report_json,
    merge_traces,
    read_trace,
    tracing,
)
from repro.store import (
    ArtifactStore,
    FaultInjector,
    InjectedCrash,
    JobQueue,
    run_worker,
    snapshot_worker_trace,
    worker_trace_path,
)


class SteppableClock:
    """Real wall clock plus a manual offset (expire leases without sleep)."""

    def __init__(self) -> None:
        import time

        self._time = time
        self.offset = 0.0

    def __call__(self) -> float:
        return self._time.time() + self.offset


def _worker_trace(tmp_path, name: str, n_spans: int, counters: dict | None = None):
    """Record a small standalone trace file posing as worker *name*."""
    tracer = Tracer(enabled=True)
    for i in range(n_spans):
        with tracer.span("work", i=i):
            pass
    for key, value in (counters or {}).items():
        tracer.metrics.count(key, value)
    path = tmp_path / f"{name}.json"
    tracer.trace(worker=name).save(path)
    return path


# -- merge round-trip --------------------------------------------------------


def test_merge_preserves_per_worker_spans_and_sums_counters(tmp_path):
    paths = [
        _worker_trace(tmp_path, "w1", 3, {"worker.jobs_done": 3}),
        _worker_trace(tmp_path, "w2", 5, {"worker.jobs_done": 5}),
        _worker_trace(tmp_path, "w3", 2, {"worker.jobs_done": 2}),
    ]
    merged = merge_traces([str(p) for p in paths])
    assert merged.workers == ["w1", "w2", "w3"]
    assert len(merged.spans) == 10
    assert len(merged.spans_for("w1")) == 3
    assert len(merged.spans_for("w2")) == 5
    assert merged.metrics.counter("worker.jobs_done") == 10
    # span ids re-namespaced: globally unique after the merge
    ids = [s.span_id for s in merged.spans]
    assert len(ids) == len(set(ids))


def test_merged_chrome_trace_roundtrips_and_keeps_worker_tracks(tmp_path):
    paths = [
        _worker_trace(tmp_path, "alpha", 2),
        _worker_trace(tmp_path, "beta", 4),
    ]
    merged = merge_traces([str(p) for p in paths])
    out = tmp_path / "fleet.json"
    merged.save(out)
    loaded = read_trace(out)
    assert not loaded.warnings
    assert len(loaded.spans) == len(merged.spans)
    tracks = {s.track for s in loaded.spans}
    assert any(t.startswith("alpha/") for t in tracks)
    assert any(t.startswith("beta/") for t in tracks)
    # one Perfetto process per worker
    data = json.loads(out.read_text())
    names = {
        ev["args"]["name"]
        for ev in data["traceEvents"]
        if ev.get("ph") == "M" and ev.get("name") == "process_name"
    }
    assert names == {"alpha", "beta"}


def test_merge_dedupes_colliding_worker_names(tmp_path):
    a = _worker_trace(tmp_path / "a", "w", 1)
    b = _worker_trace(tmp_path / "b", "w", 1)
    merged = merge_traces([str(a), str(b)])
    assert merged.workers == ["w", "w#2"]


def test_merge_nothing_raises():
    with pytest.raises(ValueError, match="nothing to merge"):
        merge_traces([])


# -- clock alignment ---------------------------------------------------------


def test_clock_offsets_shift_host_but_not_sim_tracks():
    fa = TraceFile(
        path="a.json",
        spans=[Span("x", 1, None, "host:0", 0.0, 1.0)],
        meta={"worker": "a", "epoch_unix": 100.0},
    )
    fb = TraceFile(
        path="b.json",
        spans=[
            Span("y", 1, None, "host:0", 0.0, 1.0),
            Span("k", 2, None, "sim:dev", 0.25, 0.5),
        ],
        meta={"worker": "b", "epoch_unix": 105.0},
    )
    merged = merge_traces([fb, fa])  # order must not matter for the base
    assert merged.clock_offsets == {"a": 0.0, "b": 5.0}
    (b_host,) = [s for s in merged.spans if s.track == "b/host:0"]
    assert b_host.start == pytest.approx(5.0) and b_host.end == pytest.approx(6.0)
    (b_sim,) = [s for s in merged.spans if s.track == "b/sim:dev"]
    assert b_sim.start == pytest.approx(0.25)  # simulated seconds: untouched
    (a_host,) = [s for s in merged.spans if s.track == "a/host:0"]
    assert a_host.start == pytest.approx(0.0)


def test_merge_without_clock_anchor_warns_and_leaves_unshifted():
    anchored = TraceFile(
        path="a.json",
        spans=[Span("x", 1, None, "host:0", 0.0, 1.0)],
        meta={"worker": "a", "epoch_unix": 50.0},
    )
    legacy = TraceFile(
        path="old.json", spans=[Span("y", 1, None, "host:0", 0.0, 1.0)], meta={}
    )
    merged = merge_traces([anchored, legacy])
    assert any("no epoch_unix" in w for w in merged.warnings)
    assert merged.clock_offsets["old"] == 0.0


# -- trace-context propagation through the queue -----------------------------


def _crash_once_handler(payload, store, faults):
    faults.fire("worker.job.crash")
    return {"ok": True}


def test_trace_context_survives_crash_and_reclaim(tmp_path):
    """A job reclaimed from a crashed worker continues the original trace:
    both attempts' spans link back to the same submit context."""
    clock = SteppableClock()
    queue = JobQueue(tmp_path / "queue.db", backoff_base=0.0, clock=clock)
    store = ArtifactStore(tmp_path / "store")
    trace_dir = tmp_path / "traces"
    handlers = {"boom": _crash_once_handler}

    with tracing() as submitter:
        with submitter.span("submit.root"):
            job_id = queue.submit("boom", {"n": 1})
        snapshot_worker_trace(submitter, trace_dir, "submit")
    job = queue.get(job_id)
    assert job.trace_id == submitter.trace_id
    assert job.parent_span  # the submit span's minted context id
    assert job.context is not None
    assert job.context.child_attrs()["remote_parent"] == job.parent_span

    faults = FaultInjector("worker.job.crash:1")
    with tracing() as t1:
        with pytest.raises(InjectedCrash):
            run_worker(
                queue, store, owner="w1", lease_seconds=5.0,
                faults=faults, handlers=handlers,
            )
        snapshot_worker_trace(t1, trace_dir, "w1")

    clock.offset += 6.0  # expire the crashed worker's lease
    with tracing():
        stats = run_worker(
            queue, store, owner="w2", lease_seconds=5.0,
            handlers=handlers, trace_dir=trace_dir,
        )
    assert stats.n_done == 1

    # The reclaimed row still carries the submit-time context, untouched.
    reclaimed = queue.get(job_id)
    assert reclaimed.attempts == 2
    assert reclaimed.trace_id == job.trace_id
    assert reclaimed.parent_span == job.parent_span

    merged = merge_traces(
        [
            worker_trace_path(trace_dir, "submit"),
            worker_trace_path(trace_dir, "w1"),
            worker_trace_path(trace_dir, "w2"),
        ]
    )
    assert len(merged.links) == 2  # one per attempt, across two workers
    assert {link.parent_ctx for link in merged.links} == {job.parent_span}
    assert {link.trace_id for link in merged.links} == {submitter.trace_id}
    assert all(link.parent_span_id is not None for link in merged.links)

    # The flow arrows land in the merged Chrome trace.
    chrome = fleet_chrome_trace(merged)
    flows = [ev for ev in chrome["traceEvents"] if ev.get("ph") in ("s", "f")]
    assert len(flows) == 4  # s+f per link
    assert len({ev["id"] for ev in flows}) == 1  # same submit context


# -- the counter-summation invariant -----------------------------------------

PAYLOAD = {"cells": 6, "grid": "2x2", "execution": "per-member", "device": "cpu"}

#: Deterministic counters for which fleet totals must equal the
#: single-process run (same jobs, same fresh service root).
SUMMED_COUNTERS = (
    "worker.jobs_claimed",
    "worker.jobs_done",
    "queue.claims",
    "queue.completions",
    "store.hits",
    "store.misses",
    "store.puts",
    "batch.n_subdomains",
)


def _drain(root, workers):
    """Submit 3 assemble jobs, drain with *workers* = [(owner, max_jobs)],
    one tracer per worker; returns the per-worker metrics snapshots."""
    queue = JobQueue(root / "queue.db", backoff_base=0.0)
    store = ArtifactStore(root / "store")
    for _ in range(3):
        queue.submit("assemble", PAYLOAD)
    snaps = []
    for owner, max_jobs in workers:
        with tracing() as tracer:
            run_worker(
                queue, store, owner=owner, max_jobs=max_jobs, lease_seconds=30.0
            )
            snaps.append(tracer.metrics.to_dict())
    assert queue.pending() == 0
    return snaps


def test_fleet_counters_sum_to_single_process_equivalents(tmp_path):
    fleet_snaps = _drain(tmp_path / "fleet", [("w1", 2), ("w2", None)])
    (solo_snap,) = _drain(tmp_path / "solo", [("solo", None)])
    fleet = MetricsRegistry()
    for snap in fleet_snaps:
        fleet.merge_dict(snap)
    solo = MetricsRegistry.from_dict(solo_snap)
    for name in SUMMED_COUNTERS:
        assert fleet.counter(name) == pytest.approx(solo.counter(name)), name
    assert fleet.counter("worker.jobs_done") == 3


def test_fleet_report_aggregates_worker_snapshots(tmp_path):
    fleet_snaps = _drain(tmp_path / "svc", [("w1", 2), ("w2", None)])
    files = [
        TraceFile(path=f"{owner}.json", metrics=snap, meta={"worker": owner})
        for owner, snap in zip(("w1", "w2"), fleet_snaps)
    ]
    report = fleet_report(files)
    assert "2 worker snapshot(s)" in report
    assert "w1" in report and "w2" in report
    assert "hit rate" in report
    assert "3 completion(s)" in report
    data = fleet_report_json(files)
    assert data["n_workers"] == 2
    assert data["fleet"]["counters"]["worker.jobs_done"] == 3
    assert set(data["per_worker"]) == {"w1", "w2"}


# -- metrics-merge algebra ---------------------------------------------------


_EVENTS = st.lists(
    st.tuples(
        st.sampled_from(["count", "observe"]),
        st.sampled_from(["a.total", "b.total", "c.seconds"]),
        st.integers(min_value=0, max_value=100),
    ),
    max_size=12,
)


def _snapshot(events) -> dict:
    registry = MetricsRegistry()
    for kind, name, value in events:
        if kind == "count":
            registry.count(name, float(value))
        else:
            registry.observe(name, float(value))
    return registry.to_dict()


@settings(max_examples=40, deadline=None)
@given(st.lists(_EVENTS, min_size=3, max_size=3))
def test_metrics_merge_is_associative_and_commutative(event_lists):
    a, b, c = (_snapshot(ev) for ev in event_lists)

    def fold(*snaps) -> dict:
        registry = MetricsRegistry()
        for snap in snaps:
            registry.merge_dict(snap)
        return registry.to_dict()

    left = fold(fold(a, b), c)  # (a ⊕ b) ⊕ c
    right = fold(a, fold(b, c))  # a ⊕ (b ⊕ c)
    flat = fold(a, b, c)
    swapped = fold(c, a, b)
    assert left == right == flat == swapped
