"""Tests for partitioning, subdomains, gluing and decomposition."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dd import (
    Cluster,
    decompose,
    make_clusters,
    partition_elements,
    subdomain_grid_for,
)
from repro.fem import heat_transfer_2d, heat_transfer_3d, unit_square_mesh


def test_partition_covers_all_elements():
    m = unit_square_mesh(8)
    owner = partition_elements(m, (2, 2))
    assert owner.size == m.n_elements
    assert set(owner.tolist()) == {0, 1, 2, 3}
    counts = np.bincount(owner)
    assert counts.min() == counts.max()  # balanced on a uniform mesh


def test_partition_3d_grid():
    from repro.fem import unit_cube_mesh

    m = unit_cube_mesh(4)
    owner = partition_elements(m, (2, 2, 2))
    assert len(set(owner.tolist())) == 8


def test_partition_validates_grid():
    m = unit_square_mesh(4)
    with pytest.raises(ValueError):
        partition_elements(m, (2,))
    with pytest.raises(ValueError):
        partition_elements(m, (0, 2))


def test_subdomain_grid_for():
    assert subdomain_grid_for(4, 2) == (2, 2)
    assert subdomain_grid_for(5, 2) == (3, 3)
    assert subdomain_grid_for(8, 3) == (2, 2, 2)
    with pytest.raises(ValueError):
        subdomain_grid_for(0, 2)


def test_make_clusters_balanced():
    clusters = make_clusters(10, 3)
    sizes = [c.size for c in clusters]
    assert sum(sizes) == 10
    assert max(sizes) - min(sizes) <= 1
    all_ids = np.concatenate([c.subdomain_ids for c in clusters])
    assert sorted(all_ids.tolist()) == list(range(10))


def test_make_clusters_validates():
    with pytest.raises(ValueError):
        make_clusters(3, 4)
    with pytest.raises(ValueError):
        make_clusters(0, 1)


def test_decompose_requires_exactly_one_spec():
    p = heat_transfer_2d(4)
    with pytest.raises(ValueError):
        decompose(p)
    with pytest.raises(ValueError):
        decompose(p, grid=(2, 2), n_subdomains=4)


def test_floating_flags():
    p = heat_transfer_2d(8, dirichlet=("left",))
    dec = decompose(p, grid=(2, 2))
    # The two subdomains touching the left face are pinned, the others float.
    floating = sorted(s.floating for s in dec.subdomains)
    assert floating == [False, False, True, True]
    for s in dec.subdomains:
        assert s.kernel_dim == (1 if s.floating else 0)
        if s.floating:
            assert np.abs(s.k @ s.r).max() < 1e-12


def test_local_stiffness_sums_to_global():
    p = heat_transfer_2d(10, dirichlet=("left",))
    dec = decompose(p, grid=(2, 3))
    k_ff, f_f, free = p.reduced()
    g2l = -np.ones(p.n_dofs, dtype=np.intp)
    g2l[free] = np.arange(free.size)
    acc = np.zeros((free.size, free.size))
    f_acc = np.zeros(free.size)
    for s in dec.subdomains:
        li = g2l[s.free_nodes]
        assert (li >= 0).all()
        acc[np.ix_(li, li)] += s.k.toarray()
        f_acc[li] += s.f
    assert np.allclose(acc, k_ff.toarray(), atol=1e-12)
    assert np.allclose(f_acc, f_f, atol=1e-12)


@pytest.mark.parametrize("gluing", ["redundant", "chain"])
def test_gluing_consistency(gluing):
    p = heat_transfer_2d(9, dirichlet=("left",))
    dec = decompose(p, grid=(3, 3), gluing=gluing)
    assert dec.check_consistency()
    assert dec.n_multipliers > 0


def test_redundant_has_more_multipliers_than_chain():
    p = heat_transfer_2d(8, dirichlet=("left",))
    dec_r = decompose(p, grid=(2, 2), gluing="redundant")
    dec_c = decompose(p, grid=(2, 2), gluing="chain")
    # They differ only at cross points (nodes shared by 4 subdomains).
    assert dec_r.n_multipliers > dec_c.n_multipliers


def test_unknown_gluing_rejected():
    p = heat_transfer_2d(4)
    with pytest.raises(ValueError, match="unknown gluing"):
        decompose(p, grid=(2, 2), gluing="mortar")


def test_bt_shape_and_signs():
    p = heat_transfer_2d(6, dirichlet=("left",))
    dec = decompose(p, grid=(2, 1), gluing="chain")
    s0, s1 = dec.subdomains
    assert s0.bt.shape == (s0.n_dofs, s0.n_multipliers)
    # Chain gluing between exactly two subdomains: +1 rows in the lower
    # indexed one, -1 in the other; one multiplier per shared node.
    assert np.all(s0.bt.data == 1.0)
    assert np.all(s1.bt.data == -1.0)
    assert np.array_equal(s0.multiplier_ids, s1.multiplier_ids)


def test_saddle_point_solution_matches_direct():
    """Direct solve of the torn block system == direct solve of the global
    problem (chain gluing keeps the saddle system nonsingular)."""
    p = heat_transfer_2d(12, dirichlet=("left",))
    dec = decompose(p, grid=(3, 2), gluing="chain")
    ks = sp.block_diag([s.k for s in dec.subdomains], format="csr")
    offs = np.cumsum([0] + [s.n_dofs for s in dec.subdomains])
    rows, cols, vals = [], [], []
    for i, s in enumerate(dec.subdomains):
        bt = s.bt.tocoo()
        rows.extend(s.multiplier_ids[bt.col].tolist())
        cols.extend((offs[i] + bt.row).tolist())
        vals.extend(bt.data.tolist())
    b = sp.csr_matrix((vals, (rows, cols)), shape=(dec.n_multipliers, offs[-1]))
    sys = sp.bmat([[ks, b.T], [b, None]], format="csc")
    rhs = np.concatenate(
        [np.concatenate([s.f for s in dec.subdomains]), np.zeros(dec.n_multipliers)]
    )
    sol = sp.linalg.spsolve(sys, rhs)
    u_locals = [sol[offs[i] : offs[i + 1]] for i in range(dec.n_subdomains)]
    u = dec.expand_solution(u_locals)
    assert np.allclose(u, p.solve_direct(), atol=1e-9)


def test_gather_scatter_dual_roundtrip(rng):
    p = heat_transfer_2d(8, dirichlet=("left",))
    dec = decompose(p, grid=(2, 2))
    lam = rng.standard_normal(dec.n_multipliers)
    locals_ = dec.scatter_dual(lam)
    assert all(
        np.array_equal(loc, lam[s.multiplier_ids])
        for loc, s in zip(locals_, dec.subdomains)
    )
    # Each multiplier belongs to exactly two subdomains.
    counts = np.zeros(dec.n_multipliers)
    for s in dec.subdomains:
        counts[s.multiplier_ids] += 1
    assert np.all(counts == 2)


def test_3d_decomposition():
    p = heat_transfer_3d(4, dirichlet=("left",))
    dec = decompose(p, grid=(2, 2, 1))
    assert dec.n_subdomains == 4
    assert dec.check_consistency()
    assert any(s.floating for s in dec.subdomains)


def test_n_subdomains_interface():
    p = heat_transfer_2d(8, dirichlet=("left",))
    dec = decompose(p, n_subdomains=4)
    assert dec.n_subdomains == 4


def test_regularized_is_spd():
    p = heat_transfer_2d(8, dirichlet=("left",))
    dec = decompose(p, grid=(2, 2))
    from repro.sparse import cholesky

    for s in dec.subdomains:
        f = cholesky(s.regularized(), ordering="amd")  # must not raise
        assert f.n == s.n_dofs


@settings(max_examples=8, deadline=None)
@given(
    n=st.integers(4, 12),
    px=st.integers(1, 3),
    py=st.integers(1, 3),
)
def test_property_decomposition_consistency(n, px, py):
    p = heat_transfer_2d(n, dirichlet=("left",))
    dec = decompose(p, grid=(px, py))
    assert dec.check_consistency()
    covered = np.concatenate([s.element_ids for s in dec.subdomains])
    assert sorted(covered.tolist()) == list(range(p.mesh.n_elements))
