"""Tests for the split TRSM and SYRK kernels — correctness and invariants."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    by_count,
    by_size,
    check_zeros_above_pivots,
    stepped_permutation,
    syrk_input_split,
    syrk_orig,
    syrk_output_split,
    trsm_factor_split,
    trsm_orig,
    trsm_rhs_split,
)
from repro.core.blocks import BlockSpec
from repro.gpu import A100_40GB, EPYC_7763_CORE, Executor
from repro.sparse import cholesky, solve_lower
from tests.conftest import random_spd


def _setup(n=70, m=25, density=0.06, seed=0):
    """Factor + stepped RHS + dense reference solution."""
    factor = cholesky(random_spd(n, density, seed), ordering="amd")
    bt = sp.random(n, m, density=0.1, random_state=seed + 1, format="csc")
    bt_rows = bt.tocsr()[factor.perm].tocsc()
    col_perm, shape = stepped_permutation(bt_rows)
    x = np.asarray(bt_rows[:, col_perm].todense())
    y_ref = solve_lower(factor.l, x, method="dense")
    return factor, shape, x, y_ref


def _ex():
    return Executor(A100_40GB)


# ---------------------------------------------------------------------------
# block specs
# ---------------------------------------------------------------------------


def test_blockspec_by_size():
    blocks = by_size(3).resolve(10)
    assert blocks[0][0] == 0 and blocks[-1][1] == 10
    assert sum(e - s for s, e in blocks) == 10
    assert len(blocks) == 4


def test_blockspec_by_count():
    blocks = by_count(4).resolve(10)
    assert len(blocks) == 4
    sizes = [e - s for s, e in blocks]
    assert max(sizes) - min(sizes) <= 1


def test_blockspec_edge_cases():
    assert by_size(100).resolve(10) == [(0, 10)]
    assert by_count(100).resolve(3) == [(0, 1), (1, 2), (2, 3)]
    assert by_size(5).resolve(0) == []
    with pytest.raises(ValueError):
        BlockSpec(mode="rows", value=3)
    with pytest.raises(ValueError):
        by_size(0)


def test_blockspec_describe():
    assert by_size(500).describe() == "S 500"
    assert by_count(10).describe() == "C 10"


# ---------------------------------------------------------------------------
# TRSM variants
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("storage", ["sparse", "dense"])
def test_trsm_orig_matches_reference(storage):
    factor, shape, x, y_ref = _setup()
    ex = _ex()
    trsm_orig(ex, factor.l, x, storage=storage)
    assert np.allclose(x, y_ref, atol=1e-9)
    assert ex.elapsed > 0


@pytest.mark.parametrize("storage", ["sparse", "dense"])
@pytest.mark.parametrize("blocks", [by_size(7), by_size(100), by_count(1), by_count(5)])
def test_trsm_rhs_split_matches_reference(storage, blocks):
    factor, shape, x, y_ref = _setup()
    ex = _ex()
    trsm_rhs_split(ex, factor.l, x, shape, blocks, storage=storage)
    assert np.allclose(x, y_ref, atol=1e-9)


@pytest.mark.parametrize("storage", ["sparse", "dense"])
@pytest.mark.parametrize("prune", [False, True])
@pytest.mark.parametrize("blocks", [by_size(9), by_size(500), by_count(6)])
def test_trsm_factor_split_matches_reference(storage, prune, blocks):
    factor, shape, x, y_ref = _setup()
    ex = _ex()
    trsm_factor_split(ex, factor.l, x, shape, blocks, storage=storage, prune=prune)
    assert np.allclose(x, y_ref, atol=1e-9)


def test_trsm_preserves_zeros_above_pivots():
    factor, shape, x, _ = _setup(seed=7)
    ex = _ex()
    trsm_factor_split(ex, factor.l, x, shape, by_size(10))
    assert check_zeros_above_pivots(x, shape, tol=0.0)


def test_trsm_rhs_split_preserves_zeros():
    factor, shape, x, _ = _setup(seed=9)
    ex = _ex()
    trsm_rhs_split(ex, factor.l, x, shape, by_size(6), storage="dense")
    assert check_zeros_above_pivots(x, shape, tol=0.0)


def test_trsm_handles_empty_columns():
    """Entirely-zero RHS columns (pivot == n) must be skipped, not crash."""
    factor, shape, x, y_ref = _setup()
    import numpy as np

    from repro.core import SteppedShape

    x2 = np.concatenate([x, np.zeros((x.shape[0], 2))], axis=1)
    shape2 = SteppedShape(
        n_rows=shape.n_rows,
        pivots=np.concatenate([shape.pivots, [shape.n_rows, shape.n_rows]]),
    )
    ex = _ex()
    trsm_rhs_split(ex, factor.l, x2, shape2, by_size(5))
    assert np.allclose(x2[:, :-2], y_ref, atol=1e-9)
    assert np.all(x2[:, -2:] == 0.0)


def test_trsm_split_saves_flops_vs_orig():
    """The optimized TRSM must charge strictly fewer FLOPs than the dense
    baseline on a genuinely stepped RHS (the whole point of §3.2)."""
    factor, shape, x, _ = _setup(n=150, m=60, seed=3)
    ex_orig, ex_opt = _ex(), _ex()
    trsm_orig(ex_orig, factor.l, x.copy(), storage="dense")
    trsm_rhs_split(ex_opt, factor.l, x.copy(), shape, by_size(10), storage="dense")
    assert ex_opt.ledger.total.flops < ex_orig.ledger.total.flops


def test_trsm_validates_shapes():
    factor, shape, x, _ = _setup()
    ex = _ex()
    with pytest.raises(ValueError):
        trsm_rhs_split(ex, factor.l, x[:-1], shape, by_size(5))
    with pytest.raises(ValueError):
        trsm_orig(ex, factor.l, x, storage="csr")


# ---------------------------------------------------------------------------
# SYRK variants
# ---------------------------------------------------------------------------


def _syrk_setup(n=80, m=30, seed=1):
    factor, shape, x, y_ref = _setup(n=n, m=m, seed=seed)
    f_ref = y_ref.T @ y_ref
    return shape, y_ref, f_ref


def test_syrk_orig_matches():
    shape, y, f_ref = _syrk_setup()
    f = np.zeros_like(f_ref)
    ex = _ex()
    syrk_orig(ex, y, f)
    assert np.allclose(f, f_ref, atol=1e-9)


@pytest.mark.parametrize("blocks", [by_size(7), by_size(1000), by_count(1), by_count(9)])
def test_syrk_input_split_matches(blocks):
    shape, y, f_ref = _syrk_setup()
    f = np.ones_like(f_ref)  # must be overwritten
    ex = _ex()
    syrk_input_split(ex, y, f, shape, blocks)
    assert np.allclose(f, f_ref, atol=1e-9)


@pytest.mark.parametrize("blocks", [by_size(4), by_size(1000), by_count(1), by_count(7)])
def test_syrk_output_split_matches(blocks):
    shape, y, f_ref = _syrk_setup()
    f = np.ones_like(f_ref)
    ex = _ex()
    syrk_output_split(ex, y, f, shape, blocks)
    assert np.allclose(f, f_ref, atol=1e-9)


def test_syrk_results_symmetric():
    shape, y, _ = _syrk_setup(seed=5)
    for fn in (syrk_input_split, syrk_output_split):
        f = np.zeros((y.shape[1], y.shape[1]))
        fn(_ex(), y, f, shape, by_size(11))
        assert np.allclose(f, f.T, atol=1e-12)


def test_syrk_split_saves_flops():
    shape, y, _ = _syrk_setup(n=200, m=80, seed=2)
    ex_orig, ex_in, ex_out = _ex(), _ex(), _ex()
    f = np.zeros((y.shape[1], y.shape[1]))
    syrk_orig(ex_orig, y, f.copy())
    syrk_input_split(ex_in, y, f.copy(), shape, by_size(20))
    syrk_output_split(ex_out, y, f.copy(), shape, by_size(10))
    assert ex_in.ledger.total.flops < ex_orig.ledger.total.flops
    assert ex_out.ledger.total.flops < ex_orig.ledger.total.flops


def test_syrk_validates():
    shape, y, _ = _syrk_setup()
    with pytest.raises(ValueError):
        syrk_orig(_ex(), y, np.zeros((3, 3)))
    with pytest.raises(ValueError):
        syrk_input_split(_ex(), y[:-1], np.zeros((y.shape[1],) * 2), shape, by_size(5))


# ---------------------------------------------------------------------------
# property tests: all variants agree for random inputs and block settings
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(5, 50),
    m=st.integers(1, 15),
    seed=st.integers(0, 5_000),
    block=st.integers(1, 60),
    storage=st.sampled_from(["sparse", "dense"]),
    prune=st.booleans(),
)
def test_property_trsm_variants_agree(n, m, seed, block, storage, prune):
    factor = cholesky(random_spd(n, min(1.0, 5.0 / n), seed), ordering="amd")
    bt = sp.random(n, m, density=0.2, random_state=seed, format="csc")
    bt_rows = bt.tocsr()[factor.perm].tocsc()
    col_perm, shape = stepped_permutation(bt_rows)
    x0 = np.asarray(bt_rows[:, col_perm].todense())
    ref = solve_lower(factor.l, x0.copy(), method="dense")

    x1, x2 = x0.copy(), x0.copy()
    trsm_rhs_split(_ex(), factor.l, x1, shape, by_size(block), storage=storage)
    trsm_factor_split(
        _ex(), factor.l, x2, shape, by_size(block), storage=storage, prune=prune
    )
    assert np.allclose(x1, ref, atol=1e-8)
    assert np.allclose(x2, ref, atol=1e-8)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(5, 50),
    m=st.integers(1, 15),
    seed=st.integers(0, 5_000),
    block=st.integers(1, 60),
)
def test_property_syrk_variants_agree(n, m, seed, block):
    rng = np.random.default_rng(seed)
    pivots = np.sort(rng.integers(0, n + 1, size=m))
    y = rng.standard_normal((n, m))
    for j, p in enumerate(pivots):
        y[:p, j] = 0.0
    from repro.core import SteppedShape

    shape = SteppedShape(n_rows=n, pivots=pivots)
    ref = y.T @ y
    f1 = np.zeros((m, m))
    f2 = np.zeros((m, m))
    syrk_input_split(_ex(), y, f1, shape, by_size(block))
    syrk_output_split(_ex(), y, f2, shape, by_size(block))
    assert np.allclose(f1, ref, atol=1e-9)
    assert np.allclose(f2, ref, atol=1e-9)
