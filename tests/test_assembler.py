"""Tests for the end-to-end SchurAssembler and tuning helpers."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    AssemblyConfig,
    SchurAssembler,
    baseline_config,
    by_count,
    by_size,
    default_config,
    sweep_block_parameter,
    tune_block_parameter,
)
from repro.dd import decompose
from repro.fem import heat_transfer_2d, heat_transfer_3d
from repro.gpu import A100_40GB, EPYC_7763_CORE, Executor
from repro.sparse import cholesky, solve_lower
from tests.conftest import random_spd


@pytest.fixture(scope="module")
def subdomain_2d():
    p = heat_transfer_2d(24, dirichlet=("left",))
    dec = decompose(p, grid=(3, 3))
    sub = next(s for s in dec.subdomains if s.floating)
    factor = cholesky(sub.regularized(), ordering="nd", coords=sub.coords)
    return factor, sub.bt


@pytest.fixture(scope="module")
def reference_2d(subdomain_2d):
    factor, bt = subdomain_2d
    y = solve_lower(factor.l, bt.tocsr()[factor.perm].toarray(), method="dense")
    return y.T @ y


ALL_CONFIGS = [
    baseline_config("sparse"),
    baseline_config("dense"),
    default_config("gpu", 2),
    default_config("gpu", 3),
    default_config("cpu", 2),
    default_config("cpu", 3),
    AssemblyConfig(
        trsm_variant="rhs_split",
        syrk_variant="output_split",
        trsm_blocks=by_size(16),
        syrk_blocks=by_count(3),
        factor_storage="sparse",
    ),
]


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.describe())
def test_assembler_matches_reference(config, subdomain_2d, reference_2d):
    factor, bt = subdomain_2d
    res = SchurAssembler(config=config, spec=A100_40GB).assemble(factor, bt)
    assert np.allclose(res.f, reference_2d, atol=1e-8)
    assert res.elapsed > 0
    assert set(res.breakdown) == {"transfer", "permute", "trsm", "syrk"}
    assert res.elapsed == pytest.approx(sum(res.breakdown.values()))


def test_assembler_cpu_no_transfer(subdomain_2d, reference_2d):
    factor, bt = subdomain_2d
    res = SchurAssembler.for_cpu().assemble(factor, bt)
    assert np.allclose(res.f, reference_2d, atol=1e-8)
    assert res.breakdown["transfer"] == 0.0


def test_assembler_gpu_charges_transfer(subdomain_2d):
    factor, bt = subdomain_2d
    res = SchurAssembler(config=default_config("gpu", 2)).assemble(factor, bt)
    assert res.breakdown["transfer"] > 0.0


def test_assembler_result_symmetric_spsd(subdomain_2d):
    factor, bt = subdomain_2d
    res = SchurAssembler().assemble(factor, bt)
    assert np.allclose(res.f, res.f.T, atol=1e-10)
    w = np.linalg.eigvalsh(res.f)
    assert w.min() > -1e-9  # SPSD (B has redundant rows -> singular ok)


def test_assembler_shared_executor_accumulates(subdomain_2d):
    factor, bt = subdomain_2d
    ex = Executor(A100_40GB)
    asm = SchurAssembler()
    asm.assemble(factor, bt, executor=ex)
    t1 = ex.elapsed
    asm.assemble(factor, bt, executor=ex)
    assert ex.elapsed > t1


def test_assembler_keep_y(subdomain_2d):
    factor, bt = subdomain_2d
    res = SchurAssembler().assemble(factor, bt, keep_y=True)
    assert res.y is not None
    assert res.y.shape == (factor.n, bt.shape[1])
    assert np.allclose(res.y.T @ res.y, res.f[np.ix_(res.col_perm, res.col_perm)], atol=1e-8)


def test_assembler_validates_inputs(subdomain_2d):
    factor, bt = subdomain_2d
    asm = SchurAssembler()
    with pytest.raises(ValueError, match="sparse"):
        asm.assemble(factor, bt.toarray())
    with pytest.raises(ValueError, match="rows"):
        asm.assemble(factor, sp.csc_matrix((factor.n + 1, 3)))


def test_config_validation():
    with pytest.raises(ValueError, match="unknown TRSM"):
        AssemblyConfig(trsm_variant="magic")
    with pytest.raises(ValueError, match="unknown SYRK"):
        AssemblyConfig(syrk_variant="magic")
    with pytest.raises(ValueError, match="stepped"):
        AssemblyConfig(trsm_variant="factor_split", use_stepped_permutation=False)
    with pytest.raises(ValueError):
        default_config("tpu", 3)
    with pytest.raises(ValueError):
        default_config("gpu", 4)


def test_default_config_matches_table1():
    cfg = default_config("gpu", 3)
    assert cfg.trsm_blocks.describe() == "S 500"
    assert cfg.syrk_blocks.describe() == "S 1000"
    assert cfg.factor_storage == "dense"
    cfg2 = default_config("cpu", 3)
    assert cfg2.syrk_variant == "output_split"
    cfg3 = default_config("gpu", 2)
    assert cfg3.factor_storage == "sparse"


def test_memory_estimate(subdomain_2d):
    factor, bt = subdomain_2d
    asm = SchurAssembler()
    est = asm.estimate_memory(factor, bt.shape[1])
    m = bt.shape[1]
    assert est.persistent == m * m * 8
    assert est.temporary > factor.nnz * 8


def test_optimized_charges_fewer_flops_than_baseline(subdomain_2d):
    factor, bt = subdomain_2d
    ex_base, ex_opt = Executor(A100_40GB), Executor(A100_40GB)
    SchurAssembler(config=baseline_config("dense")).assemble(factor, bt, executor=ex_base)
    SchurAssembler(config=default_config("gpu", 2)).assemble(factor, bt, executor=ex_opt)
    assert ex_opt.ledger.total.flops < ex_base.ledger.total.flops


def test_assembler_3d_problem():
    p = heat_transfer_3d(8, dirichlet=("left",))
    dec = decompose(p, grid=(2, 2, 2))
    sub = next(s for s in dec.subdomains if s.floating)
    factor = cholesky(sub.regularized(), ordering="nd", coords=sub.coords)
    ref_y = solve_lower(factor.l, sub.bt.tocsr()[factor.perm].toarray(), method="superlu")
    ref = ref_y.T @ ref_y
    res = SchurAssembler(config=default_config("gpu", 3)).assemble(factor, sub.bt)
    assert np.allclose(res.f, ref, atol=1e-8)


# ---------------------------------------------------------------------------
# tuning
# ---------------------------------------------------------------------------


def test_sweep_block_parameter(subdomain_2d):
    factor, bt = subdomain_2d
    points = sweep_block_parameter(
        factor,
        bt,
        default_config("gpu", 2),
        A100_40GB,
        values=[5, 50, 500],
        mode="size",
        target="both",
    )
    assert len(points) == 3
    assert all(p.elapsed > 0 for p in points)
    # Extremely small blocks must be slower than moderate ones (launch
    # overhead dominates) — the U-shape of Figure 5.
    tiny = sweep_block_parameter(
        factor, bt, default_config("gpu", 2), A100_40GB, values=[1], mode="size",
        target="both",
    )[0]
    assert tiny.elapsed > min(p.elapsed for p in points)


def test_tune_block_parameter_returns_best(subdomain_2d):
    factor, bt = subdomain_2d
    best = tune_block_parameter(
        factor,
        bt,
        default_config("gpu", 2),
        A100_40GB,
        values=[1, 20, 200],
        mode="size",
        target="trsm",
    )
    assert best.mode == "size"
    assert best.value in (1, 20, 200)


def test_sweep_validates():
    factor = cholesky(random_spd(10, 0.5, 0))
    bt = sp.random(10, 3, density=0.3, random_state=0, format="csc")
    with pytest.raises(ValueError, match="unknown target"):
        sweep_block_parameter(factor, bt, default_config(), A100_40GB, [1], target="x")
    with pytest.raises(ValueError, match="unknown mode"):
        sweep_block_parameter(factor, bt, default_config(), A100_40GB, [1], mode="x")
