"""Canonical frames: translation invariance of the regularization/ordering/
fingerprint path, and value-independent factor/regularization structure."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import factor_fingerprint, geometric_fingerprint, subdomain_fingerprint
from repro.dd import decompose
from repro.fem import heat_transfer_2d
from repro.feti.operator import factorize_subdomain
from repro.sparse import (
    CanonicalFrame,
    canonical_coords,
    canonical_frame,
    canonical_signature,
    cholesky,
    choose_fixing_dofs,
    choose_fixing_nodes,
    conform_to_symbolic,
    frame_digest,
    nd_ordering,
    orientation_transforms,
    regularize,
)
from repro.sparse.cholesky import CholeskyFactor
from tests.conftest import grid_coords, laplacian_2d, random_spd

#: Offsets bounded so translation jitter (~eps * |offset|) stays far below
#: the canonical quantum (tolerance * subdomain size); see canonical.py.
OFFSETS = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


@pytest.fixture(scope="module")
def floating_subdomain():
    problem = heat_transfer_2d(12, dirichlet=())
    dec = decompose(problem, grid=(3, 3))
    return dec.subdomains[4]  # the interior subdomain


# ---------------------------------------------------------------------------
# canonical frame basics
# ---------------------------------------------------------------------------


def test_canonical_frame_lattice_and_coords():
    coords = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 2.0]])
    frame = canonical_frame(coords)
    assert isinstance(frame, CanonicalFrame)
    assert frame.n_points == 3 and frame.dim == 2
    assert frame.scale == 2.0
    assert np.array_equal(frame.lattice.min(axis=0), [0, 0])
    cc = frame.coords()
    # Uniform scaling preserves geometry: relative positions survive.
    assert np.argmax(np.linalg.norm(cc - cc[0], axis=1)) == 2


def test_canonical_frame_exact_translation():
    coords = grid_coords(4, 3)
    a = canonical_frame(coords)
    b = canonical_frame(coords + np.array([17.0, -3.5]))
    assert np.array_equal(a.lattice, b.lattice)
    assert a.digest() == b.digest()
    assert np.array_equal(canonical_coords(coords), canonical_coords(coords + 5.0))


def test_canonical_frame_empty_and_degenerate():
    empty = canonical_frame(np.empty((0, 2)))
    assert empty.n_points == 0 and empty.digest()
    point = canonical_frame(np.array([[3.0, 4.0]]))
    assert np.array_equal(point.lattice, [[0, 0]])


def test_canonical_frame_validates():
    with pytest.raises(ValueError, match="tolerance"):
        canonical_frame(np.zeros((2, 2)), tolerance=2.0)
    with pytest.raises(ValueError, match="finite"):
        canonical_frame(np.array([[np.nan, 0.0]]))


def test_canonical_frame_quantization_merges_jitter():
    coords = grid_coords(3, 3)
    jittered = coords + 1e-12 * np.arange(18).reshape(9, 2)
    assert frame_digest(coords) == frame_digest(jittered)
    # Distinct geometry (beyond the tolerance) stays distinct.
    assert frame_digest(coords) != frame_digest(coords * np.array([1.5, 1.0]))


# ---------------------------------------------------------------------------
# canonical signature (orientation invariance)
# ---------------------------------------------------------------------------


def test_orientation_transforms_counts():
    assert len(orientation_transforms(1)) == 2
    assert len(orientation_transforms(2)) == 8
    assert len(orientation_transforms(3)) == 48
    with pytest.raises(ValueError):
        orientation_transforms(4)


def test_canonical_signature_rigid_symmetry_invariance():
    coords = grid_coords(4, 3).astype(np.float64)
    feats = np.arange(12) % 3
    base = canonical_signature(coords, feats)
    flipped = coords * np.array([-1.0, 1.0]) + np.array([9.0, 2.0])
    swapped = coords[:, ::-1] - 4.0
    assert canonical_signature(flipped, feats) == base
    assert canonical_signature(swapped, feats) == base
    # Features are part of the identity.
    assert canonical_signature(coords, feats + 1) != base
    # And so is the labelled geometry, not just the point multiset.
    perm = np.random.default_rng(0).permutation(12)
    assert canonical_signature(coords[perm], feats[perm]) == base
    assert canonical_signature(coords[perm], feats) != base


# ---------------------------------------------------------------------------
# translation invariance of the decision path (property tests)
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(dx=OFFSETS, dy=OFFSETS)
def test_property_fixing_dofs_translation_invariant(floating_subdomain, dx, dy):
    sub = floating_subdomain
    offset = np.array([dx, dy])
    base = choose_fixing_dofs(sub.k, sub.kernel_dim, coords=sub.coords)
    moved = choose_fixing_dofs(sub.k, sub.kernel_dim, coords=sub.coords + offset)
    assert np.array_equal(base, moved)


@settings(max_examples=25, deadline=None)
@given(dx=OFFSETS, dy=OFFSETS)
def test_property_nd_permutation_translation_invariant(floating_subdomain, dx, dy):
    sub = floating_subdomain
    kreg = regularize(sub.k, choose_fixing_dofs(sub.k, sub.kernel_dim, coords=sub.coords))
    offset = np.array([dx, dy])
    base = nd_ordering(kreg, coords=sub.coords, leaf_size=8)
    moved = nd_ordering(kreg, coords=sub.coords + offset, leaf_size=8)
    assert np.array_equal(base, moved)


@settings(max_examples=40, deadline=None)
@given(dx=OFFSETS, dy=OFFSETS)
def test_property_fingerprints_translation_invariant(floating_subdomain, dx, dy):
    sub = floating_subdomain
    offset = np.array([dx, dy])
    assert (
        subdomain_fingerprint(sub.k, sub.bt, coords=sub.coords).key
        == subdomain_fingerprint(sub.k, sub.bt, coords=sub.coords + offset).key
    )
    assert (
        geometric_fingerprint(sub.coords, sub.bt).key
        == geometric_fingerprint(sub.coords + offset, sub.bt).key
    )


@settings(max_examples=10, deadline=None)
@given(dx=OFFSETS, dy=OFFSETS)
def test_property_factor_fingerprint_translation_invariant(floating_subdomain, dx, dy):
    sub = floating_subdomain
    moved = replace(sub, coords=sub.coords + np.array([dx, dy]))
    fp = factor_fingerprint(factorize_subdomain(sub), sub.bt)
    fp_moved = factor_fingerprint(factorize_subdomain(moved), moved.bt)
    assert fp.key == fp_moved.key


def test_choose_fixing_nodes_translation_invariant():
    coords = grid_coords(5, 4)
    base = choose_fixing_nodes(coords, 3, dofs_per_node=2)
    moved = choose_fixing_nodes(coords + np.array([41.0, -7.25]), 3, dofs_per_node=2)
    assert np.array_equal(base, moved)


# ---------------------------------------------------------------------------
# rigid mesh translation: bitwise-identical Schur complements
# ---------------------------------------------------------------------------


@settings(max_examples=8, deadline=None)
@given(ox=st.integers(min_value=-16, max_value=16), oy=st.integers(min_value=-16, max_value=16))
def test_property_rigid_mesh_translation_bitwise_sc(ox, oy):
    """Translating the whole mesh by a dyadic offset leaves every assembled
    Schur complement bitwise identical (dyadic offsets + power-of-two mesh
    spacing keep coordinate differences exact in floating point, and the
    canonical frame keeps fixing DOFs and permutations fixed)."""
    from repro.core import SchurAssembler, default_config

    offset = np.array([ox * 0.25, oy * 0.25])
    problem = heat_transfer_2d(8, dirichlet=())
    dec = decompose(problem, grid=(2, 2))
    mesh2 = replace(problem.mesh, coords=problem.mesh.coords + offset)
    dec2 = decompose(replace(problem, mesh=mesh2), grid=(2, 2))

    asm = SchurAssembler(config=default_config("gpu", 2))
    for sub, sub2 in zip(dec.subdomains, dec2.subdomains):
        f1 = factorize_subdomain(sub)
        f2 = factorize_subdomain(sub2)
        assert np.array_equal(f1.perm, f2.perm)
        res1 = asm.assemble(f1, sub.bt)
        res2 = asm.assemble(f2, sub2.bt)
        assert np.array_equal(res1.f, res2.f)


# ---------------------------------------------------------------------------
# value-independent structure: regularize and conform_to_symbolic
# ---------------------------------------------------------------------------


def test_regularize_preserves_explicit_zeros():
    """The K_reg pattern must not depend on whether an entry is exactly 0.0
    or 1e-17 — SciPy's sparse ``+`` would prune the former."""
    base = laplacian_2d(3, 3).tolil()
    base[0, 8] = base[8, 0] = 1.0
    a = sp.csr_matrix(base.tocsr())
    b = a.copy()
    a.data = a.data.copy()
    b.data = b.data.copy()
    (za,) = np.flatnonzero((a.indices == 8) & (np.repeat(np.arange(9), np.diff(a.indptr)) == 0))
    a.data[za] = 0.0  # exact zero
    b.data[za] = 1e-17  # jittered "zero"
    ra = regularize(a, np.array([0]), rho=1.0).tocsc()
    rb = regularize(b, np.array([0]), rho=1.0).tocsc()
    assert np.array_equal(ra.indptr, rb.indptr)
    assert np.array_equal(ra.indices, rb.indices)
    assert ra.nnz == a.nnz  # union pattern, nothing pruned


def test_conform_to_symbolic_matches_native_pattern():
    a = random_spd(40, 0.1, seed=3)
    sup = cholesky(a, ordering="amd", conform=True)
    nat = cholesky(a, ordering="amd", engine="native")
    ls, ln = sup.l.tocsc(), nat.l.tocsc()
    assert np.array_equal(ls.indptr, ln.indptr)
    assert np.array_equal(ls.indices, ln.indices)
    assert np.allclose(ls.toarray(), ln.toarray(), atol=1e-10)
    # Solves are unaffected by the explicit zeros.
    rhs = np.arange(40, dtype=np.float64)
    assert np.allclose(sup.solve(rhs), nat.solve(rhs), atol=1e-8)
    # Conforming an already-symbolic factor is the identity.
    ap = sp.csc_matrix(a.tocsr()[sup.perm][:, sup.perm])
    again = conform_to_symbolic(sup.l.tocsc(), ap)
    assert again.nnz == sup.l.nnz


def test_factor_fingerprint_ignores_tied_perm_relabeling():
    """Permutations that differ but produce the same stored-L pattern and
    the same permuted gluing pattern must share a fingerprint — the cached
    artifacts are computed from exactly those two patterns."""
    n = 12
    factor = cholesky(sp.csr_matrix(sp.eye(n)), ordering="natural")
    relabeled = CholeskyFactor(
        l=factor.l,
        perm=np.roll(factor.perm, 1),  # diagonal L: any perm, same pattern
        flops=factor.flops,
        engine=factor.engine,
    )
    bt_uniform = sp.csc_matrix(np.ones((n, 2)))  # rows identical: perm-proof
    assert (
        factor_fingerprint(factor, bt_uniform).key
        == factor_fingerprint(relabeled, bt_uniform).key
    )
    bt_distinct = sp.csc_matrix(np.eye(n)[:, :3])  # rows distinct: perm matters
    assert (
        factor_fingerprint(factor, bt_distinct).key
        != factor_fingerprint(relabeled, bt_distinct).key
    )


# ---------------------------------------------------------------------------
# geometric fingerprint on a real decomposition
# ---------------------------------------------------------------------------


def test_geometric_fingerprint_merges_mirror_classes():
    problem = heat_transfer_2d(12, dirichlet=())
    dec = decompose(problem, grid=(3, 3))
    keys = [geometric_fingerprint(s.coords, s.bt).key for s in dec.subdomains]
    # 3x3 floating grid: 4 corners + 4 edges + 1 interior -> 3 classes.
    assert len(set(keys)) == 3
    corners = {keys[i] for i in (0, 2, 6, 8)}
    edges = {keys[i] for i in (1, 3, 5, 7)}
    assert len(corners) == 1 and len(edges) == 1
    assert corners != edges != {keys[4]}


def test_geometric_fingerprint_validates():
    with pytest.raises(ValueError, match="sparse"):
        geometric_fingerprint(np.zeros((3, 2)), np.zeros((3, 1)))
    with pytest.raises(ValueError, match="one row per DOF"):
        geometric_fingerprint(np.zeros((2, 2)), sp.csc_matrix((3, 1)))
