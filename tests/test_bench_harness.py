"""Tests for the benchmark harness: workloads, report, experiment drivers."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bench import (
    ExperimentResult,
    cells_for_dofs,
    clear_workload_cache,
    make_workload,
    run_experiment,
    size_ladder,
)
from repro.bench.workloads import PAPER_DOFS_2D, PAPER_DOFS_3D


def test_cells_for_dofs_round_trip():
    assert cells_for_dofs(3, 2744) == 13  # 14^3 = 2744 nodes
    assert cells_for_dofs(3, 35937) == 32  # 33^3
    assert cells_for_dofs(2, 100) == 9  # 10^2
    with pytest.raises(ValueError):
        cells_for_dofs(4, 100)
    with pytest.raises(ValueError):
        cells_for_dofs(2, 1)


def test_size_ladders():
    assert size_ladder(2) == PAPER_DOFS_2D
    assert size_ladder(3) == PAPER_DOFS_3D
    assert size_ladder(3, paper_scale=True)[-1] == 68921
    assert size_ladder(3, cap=1000) == [64, 125, 216, 343, 729]
    with pytest.raises(ValueError):
        size_ladder(4)


def test_make_workload_properties():
    wl = make_workload(3, 729)
    assert wl.dim == 3
    assert wl.n_dofs == 729
    # One multiplier per boundary node: 9^3 - 7^3.
    assert wl.n_multipliers == 729 - 343
    assert wl.bt.shape == (729, wl.n_multipliers)
    assert wl.factor.n == 729
    assert wl.label == "3D/729"
    # K_reg is SPD (factorization succeeded) while K itself is singular.
    assert np.abs(wl.factor.l @ wl.factor.l.T
                  - wl.k_reg.tocsr()[wl.factor.perm][:, wl.factor.perm]).max() < 1e-8


def test_make_workload_cached():
    clear_workload_cache()
    a = make_workload(2, 578)
    b = make_workload(2, 578)
    assert a is b
    c = make_workload(2, 578, use_cache=False)
    assert c is not a
    clear_workload_cache()
    d = make_workload(2, 578)
    assert d is not a


def test_experiment_result_render_and_save(tmp_path):
    res = ExperimentResult("figXX", "demo experiment")
    res.add_series("series", "n", [1, 2], {"t": [0.1, 0.2]})
    res.metrics["speedup"] = 3.14
    res.add_note("a note")
    text = res.render()
    assert "figXX" in text and "speedup" in text and "a note" in text
    path = res.save(str(tmp_path))
    assert os.path.exists(path)
    with open(path) as fh:
        assert "demo experiment" in fh.read()


def test_run_experiment_unknown():
    with pytest.raises(ValueError, match="unknown experiment"):
        run_experiment("fig99")


@pytest.mark.slow
def test_fig05_driver_smoke():
    """One full driver run on tiny sizes to guard against bit-rot."""
    res = run_experiment("fig05", quick=True)
    assert res.metrics["u_shape_penalty_small_3k"] > 1.0
    assert any("fig05" in name for name, _ in res.tables)
