"""Tests for the benchmark harness: workloads, report, experiment drivers,
and the CI benchmark regression gate (``tools/check_bench.py``)."""

from __future__ import annotations

import copy
import importlib.util
import json
import os
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.bench import (
    ExperimentResult,
    cells_for_dofs,
    clear_workload_cache,
    make_workload,
    run_experiment,
    size_ladder,
)
from repro.bench.workloads import PAPER_DOFS_2D, PAPER_DOFS_3D


def test_cells_for_dofs_round_trip():
    assert cells_for_dofs(3, 2744) == 13  # 14^3 = 2744 nodes
    assert cells_for_dofs(3, 35937) == 32  # 33^3
    assert cells_for_dofs(2, 100) == 9  # 10^2
    with pytest.raises(ValueError):
        cells_for_dofs(4, 100)
    with pytest.raises(ValueError):
        cells_for_dofs(2, 1)


def test_size_ladders():
    assert size_ladder(2) == PAPER_DOFS_2D
    assert size_ladder(3) == PAPER_DOFS_3D
    assert size_ladder(3, paper_scale=True)[-1] == 68921
    assert size_ladder(3, cap=1000) == [64, 125, 216, 343, 729]
    with pytest.raises(ValueError):
        size_ladder(4)


def test_make_workload_properties():
    wl = make_workload(3, 729)
    assert wl.dim == 3
    assert wl.n_dofs == 729
    # One multiplier per boundary node: 9^3 - 7^3.
    assert wl.n_multipliers == 729 - 343
    assert wl.bt.shape == (729, wl.n_multipliers)
    assert wl.factor.n == 729
    assert wl.label == "3D/729"
    # K_reg is SPD (factorization succeeded) while K itself is singular.
    assert np.abs(wl.factor.l @ wl.factor.l.T
                  - wl.k_reg.tocsr()[wl.factor.perm][:, wl.factor.perm]).max() < 1e-8


def test_make_workload_cached():
    clear_workload_cache()
    a = make_workload(2, 578)
    b = make_workload(2, 578)
    assert a is b
    c = make_workload(2, 578, use_cache=False)
    assert c is not a
    clear_workload_cache()
    d = make_workload(2, 578)
    assert d is not a


def test_experiment_result_render_and_save(tmp_path):
    res = ExperimentResult("figXX", "demo experiment")
    res.add_series("series", "n", [1, 2], {"t": [0.1, 0.2]})
    res.metrics["speedup"] = 3.14
    res.add_note("a note")
    text = res.render()
    assert "figXX" in text and "speedup" in text and "a note" in text
    path = res.save(str(tmp_path))
    assert os.path.exists(path)
    with open(path) as fh:
        assert "demo experiment" in fh.read()


def test_run_experiment_unknown():
    with pytest.raises(ValueError, match="unknown experiment"):
        run_experiment("fig99")


@pytest.mark.slow
def test_fig05_driver_smoke():
    """One full driver run on tiny sizes to guard against bit-rot."""
    res = run_experiment("fig05", quick=True)
    assert res.metrics["u_shape_penalty_small_3k"] > 1.0
    assert any("fig05" in name for name, _ in res.tables)


# ---------------------------------------------------------------------------
# tools/check_bench.py — the CI benchmark regression gate
# ---------------------------------------------------------------------------

REPO = Path(__file__).resolve().parent.parent


def _load_check_bench():
    spec = importlib.util.spec_from_file_location(
        "check_bench", REPO / "tools" / "check_bench.py"
    )
    mod = importlib.util.module_from_spec(spec)
    # register before exec: the tool's @dataclass decorators resolve their
    # defining module through sys.modules
    sys.modules["check_bench"] = mod
    spec.loader.exec_module(mod)
    return mod


def _fake_report() -> dict:
    """A minimal pytest-benchmark report shaped like the CI artifact."""
    return {
        "benchmarks": [
            {
                "name": "test_unstructured_grouping_and_execution",
                "stats": {"mean": 0.42},
                "extra_info": {
                    "n_subdomains": 32,
                    "grouping_ratio": 2.46,
                    "n_union_groups": 5,
                    "union_launches": 65,
                    "member_launches": 160,
                    "union_fill_ratio": 2.56,
                    "exec_grouped_s": 0.004,  # informational, never gated
                },
            },
            {
                "name": "test_grouped_execution_speedup",
                "stats": {"mean": 0.40},
                "extra_info": {"grouped_speedup": 8.2, "launches_grouped": 15},
            },
        ]
    }


def test_check_bench_round_trip_passes():
    """extract -> diff of the identical report gates clean."""
    cb = _load_check_bench()
    report = _fake_report()
    baseline = cb.extract_baseline(report, source="unit")
    deltas, errors = cb.diff(baseline, report)
    assert not errors
    assert not any(d.regressed for d in deltas)
    # informational metrics are compared but never gated
    info = {d.metric for d in deltas if not d.gated}
    assert "mean_s" in info and "exec_grouped_s" in info


def test_check_bench_flags_injected_regression(tmp_path, capsys):
    """A synthetically worsened metric fails the gate (exit code 1)."""
    cb = _load_check_bench()
    report = _fake_report()
    baseline = cb.extract_baseline(report, source="unit")
    bad = copy.deepcopy(report)
    extra = bad["benchmarks"][0]["extra_info"]
    extra["grouping_ratio"] = 1.1  # higher-is-better metric collapses
    extra["union_launches"] = 200  # lower-is-better metric explodes

    deltas, errors = cb.diff(baseline, bad)
    assert not errors
    regressed = {d.metric for d in deltas if d.regressed}
    assert regressed == {"grouping_ratio", "union_launches"}

    # end-to-end through main(): the CI entry point must exit non-zero
    base_path = tmp_path / "baseline.json"
    fresh_path = tmp_path / "fresh.json"
    base_path.write_text(json.dumps(baseline))
    fresh_path.write_text(json.dumps(bad))
    delta_path = tmp_path / "delta.md"
    rc = cb.main(
        ["diff", str(fresh_path), "--baseline", str(base_path),
         "--delta-out", str(delta_path)]
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "REGRESSED" in out and "re-baseline" in out
    assert "REGRESSED" in delta_path.read_text()


def test_check_bench_tolerance_band_absorbs_noise():
    """Movement inside a metric's tolerance band is not a regression."""
    cb = _load_check_bench()
    report = _fake_report()
    baseline = cb.extract_baseline(report, source="unit")
    noisy = copy.deepcopy(report)
    # grouped_speedup has a wide CI-noise band (host wall-clock ratio)
    noisy["benchmarks"][1]["extra_info"]["grouped_speedup"] = 8.2 * 0.6
    deltas, errors = cb.diff(baseline, noisy)
    assert not errors and not any(d.regressed for d in deltas)
    # ... but collapsing past the band still fails
    noisy["benchmarks"][1]["extra_info"]["grouped_speedup"] = 8.2 * 0.4
    deltas, _ = cb.diff(baseline, noisy)
    assert any(d.regressed and d.metric == "grouped_speedup" for d in deltas)


def test_check_bench_structural_drift_and_missing_are_errors():
    """EQUAL-gated counters flag any drift; vanished benchmarks/metrics
    are hard errors."""
    cb = _load_check_bench()
    report = _fake_report()
    baseline = cb.extract_baseline(report, source="unit")

    drifted = copy.deepcopy(report)
    drifted["benchmarks"][0]["extra_info"]["n_subdomains"] = 16
    deltas, errors = cb.diff(baseline, drifted)
    assert any(d.regressed and d.metric == "n_subdomains" for d in deltas)

    shrunk = copy.deepcopy(report)
    del shrunk["benchmarks"][1]
    del shrunk["benchmarks"][0]["extra_info"]["union_launches"]
    _, errors = cb.diff(baseline, shrunk)
    assert len(errors) == 2
    assert any("disappeared" in e and "test_grouped_execution_speedup" in e
               for e in errors)
    assert any("union_launches" in e for e in errors)


def test_check_bench_committed_baseline_is_current():
    """The committed baseline parses, has the right schema, and covers the
    union-execution metrics the CI gate asserts on."""
    cb = _load_check_bench()
    baseline = json.loads((REPO / "benchmarks" / "baseline.json").read_text())
    assert baseline["schema"] == cb.SCHEMA
    unstructured = baseline["benchmarks"][
        "test_unstructured_grouping_and_execution"
    ]["extra_info"]
    assert unstructured["n_union_groups"] >= 1
    assert unstructured["union_launches"] * 2 <= unstructured["member_launches"]
    # every gated metric name in the baseline is known to the gate table or
    # deliberately informational — catches typos when re-baselining
    for bench in baseline["benchmarks"].values():
        for metric in bench["extra_info"]:
            assert metric in cb.GATES or metric.endswith("_s"), metric
