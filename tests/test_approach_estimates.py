"""Agreement between executed approach preprocessing and the pattern-only
estimates used by the large-size benchmark sweeps."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.bench.workloads import make_workload
from repro.dd import decompose
from repro.fem import heat_transfer_2d
from repro.feti import APPROACHES, estimate_approach_timing, make_approach
from repro.sparse import cholesky, estimate_augmented_cost, factor_etree, schur_augmented
from tests.conftest import random_spd


@pytest.fixture(scope="module")
def subdomain():
    p = heat_transfer_2d(16, dirichlet=("left",))
    dec = decompose(p, grid=(2, 2))
    return next(s for s in dec.subdomains if s.floating)


@pytest.mark.parametrize("name", sorted(APPROACHES))
def test_estimate_matches_executed_preprocessing(name, subdomain):
    """estimate_approach_timing must reproduce the executed approach's
    simulated preprocessing and apply times (exact augmented estimation)."""
    sub = subdomain
    executed = make_approach(name).preprocess_subdomain(sub)
    factor = executed.local_op.factor
    est = estimate_approach_timing(
        name, factor, sub.bt, dim=2, max_augmented_columns=sub.bt.shape[1]
    )
    assert est.preprocessing == pytest.approx(executed.preprocessing_time, rel=1e-9)
    assert est.apply_per_iteration == pytest.approx(executed.apply_time, rel=1e-9)


def test_estimate_unknown_approach(subdomain):
    with pytest.raises(ValueError, match="unknown approach"):
        estimate_approach_timing("expl_magic", None, subdomain.bt, 2)


def test_factor_etree_matches_first_subdiagonal():
    f = cholesky(random_spd(40, 0.1, 1), ordering="amd")
    parent = factor_etree(f)
    lc = f.l.tocsc()
    for j in range(40):
        col = lc.indices[lc.indptr[j] : lc.indptr[j + 1]]
        expected = col[1] if col.size > 1 else -1
        assert parent[j] == expected


def test_augmented_estimate_exact_matches_executed():
    k = random_spd(120, 0.05, 7)
    bt = sp.random(120, 20, density=0.08, random_state=8, format="csc")
    f = cholesky(k, ordering="amd")
    res = schur_augmented(k, bt, factor=f)
    est = estimate_augmented_cost(f, bt, max_columns=20)
    assert est.solve_flops == res.solve_flops
    assert est.syrk_flops == res.syrk_flops
    assert est.y_nnz == res.y_nnz
    assert not est.sampled


def test_augmented_estimate_sampled_close():
    wl = make_workload(2, 2178)
    res = schur_augmented(wl.k_reg, wl.bt, factor=wl.factor)
    est = estimate_augmented_cost(wl.factor, wl.bt, max_columns=96, seed=3)
    assert est.sampled
    assert est.solve_flops == pytest.approx(res.solve_flops, rel=0.25)
    assert est.syrk_flops == pytest.approx(res.syrk_flops, rel=0.35)


def test_augmented_estimate_validates():
    f = cholesky(random_spd(10, 0.5, 0))
    with pytest.raises(ValueError):
        estimate_augmented_cost(f, np.ones((10, 2)))
    with pytest.raises(ValueError):
        estimate_augmented_cost(f, sp.csc_matrix((9, 2)))
    empty = estimate_augmented_cost(f, sp.csc_matrix((10, 0)))
    assert empty.solve_flops == 0.0


def test_estimated_ordering_matches_paper_claims():
    """Key Fig. 9 orderings must hold in the estimates at a mid 3-D size."""
    wl = make_workload(3, 4913)
    t = {
        name: estimate_approach_timing(name, wl.factor, wl.bt, dim=3)
        for name in APPROACHES
    }
    # Implicit preprocessing (factorize only) is the cheapest.
    assert t["impl_mkl"].preprocessing < t["expl_gpu_opt"].preprocessing
    # The paper's approach beats the previous GPU baseline and expl_mkl in 3-D.
    assert t["expl_gpu_opt"].preprocessing < t["expl_cuda"].preprocessing
    assert t["expl_gpu_opt"].preprocessing < t["expl_mkl"].preprocessing
    # Explicit application is far cheaper per iteration than implicit.
    assert t["expl_gpu_opt"].apply_per_iteration < t["impl_mkl"].apply_per_iteration
