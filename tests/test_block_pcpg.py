"""Property tests for the block (multi-RHS) PCPG solver.

Block PCPG is recurrence-heavy code, so the correctness argument is a set
of invariants rather than hand-picked examples:

* with one RHS column the block recurrence collapses to the scalar
  :func:`repro.feti.pcpg.pcpg` **iterate for iterate** (same iteration
  count, same residual history, same multipliers),
* the block solution matches ``k`` independent sequential scalar solves at
  tight tolerance — on synthetic dual systems and end-to-end through
  :meth:`FetiSolver.solve_block` across the mesh zoo, both graph
  partitioners and every preconditioner,
* the coarse projector is idempotent and annihilates ``G^T`` on every
  panel the iteration touches, and
* deflated columns stay converged: a column's residual history is frozen
  at its converged norm once it leaves the active set, and the active
  history up to that point never ends above the tolerance it met.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.feti.block_pcpg import BlockPcpgResult, block_pcpg
from repro.feti.pcpg import pcpg
from repro.feti.projector import CoarseProblem

RTOL, ATOL = 1e-9, 1e-10


# ---------------------------------------------------------------------------
# synthetic dual systems: dense SPD F, random kernel matrix G
# ---------------------------------------------------------------------------


def _dual_system(m: int, kdim: int, seed: int):
    """A dense SPD dual operator and a full-rank kernel matrix."""
    rng = np.random.default_rng(seed)
    q = rng.standard_normal((m, m))
    f = q @ q.T + m * np.eye(m)
    g = rng.standard_normal((m, kdim)) if kdim else np.zeros((m, 0))
    return f, g, rng


def _solve_columns(f, d, g, e, **kwargs):
    """Column-by-column scalar PCPG — the sequential comparator."""
    results = [
        pcpg(lambda v: f @ v, d[:, j], g, e[:, j], **kwargs)
        for j in range(d.shape[1])
    ]
    lam = np.stack([r.lam for r in results], axis=1)
    return lam, results


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(6, 24),
    kdim=st.integers(0, 3),
    seed=st.integers(0, 10_000),
    precond=st.booleans(),
)
def test_property_block_k1_matches_scalar_iterate_for_iterate(m, kdim, seed, precond):
    f, g, rng = _dual_system(m, kdim, seed)
    d = rng.standard_normal((m, 1))
    e = rng.standard_normal((kdim, 1))
    mdiag = 1.0 + rng.random(m)
    pc = (lambda w: (w.T * mdiag).T) if precond else None

    scalar = pcpg(lambda v: f @ v, d[:, 0], g, e[:, 0], apply_precond=pc)
    block = block_pcpg(lambda x: f @ x, d, g, e, apply_precond=pc)

    assert block.iterations == scalar.iterations
    assert block.converged == scalar.converged
    assert len(block.residuals) == len(scalar.residuals)
    # identical history up to rounding noise relative to the start residual
    # (the final entries sit at machine noise, where summation order differs)
    floor = 1e-11 * scalar.residuals[0]
    for bres, sres in zip(block.residuals, scalar.residuals):
        assert bres.shape == (1,)
        assert bres[0] == pytest.approx(sres, rel=1e-9, abs=floor)
    assert np.allclose(block.lam[:, 0], scalar.lam, rtol=1e-12, atol=1e-13)
    assert np.allclose(block.alpha[:, 0], scalar.alpha, rtol=1e-10, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(8, 24),
    k=st.integers(2, 4),
    kdim=st.integers(0, 3),
    seed=st.integers(0, 10_000),
    precond=st.booleans(),
)
def test_property_block_matches_sequential_solves(m, k, kdim, seed, precond):
    f, g, rng = _dual_system(m, kdim, seed)
    d = rng.standard_normal((m, k))
    e = rng.standard_normal((kdim, k))
    mdiag = 1.0 + rng.random(m)
    pc = (lambda w: (w.T * mdiag).T) if precond else None

    block = block_pcpg(lambda x: f @ x, d, g, e, apply_precond=pc)
    lam_seq, results = _solve_columns(f, d, g, e, apply_precond=pc)

    assert block.converged and all(r.converged for r in results)
    scale = max(1.0, float(np.abs(lam_seq).max()))
    assert np.allclose(block.lam, lam_seq, rtol=RTOL, atol=ATOL * scale)
    # Block CG shares Krylov information across columns: never slower than
    # the worst sequential column by more than one iteration.
    assert block.iterations <= max(r.iterations for r in results) + 1


@settings(max_examples=20, deadline=None)
@given(m=st.integers(8, 20), kdim=st.integers(0, 3), seed=st.integers(0, 10_000))
def test_property_projector_invariants_on_every_iterate(m, kdim, seed):
    """P is idempotent and ``G^T (P w) ~= 0`` for every panel the iteration
    hands to the preconditioner (always a projected residual panel)."""
    f, g, rng = _dual_system(m, kdim, seed)
    d = rng.standard_normal((m, 3))
    e = rng.standard_normal((kdim, 3))
    coarse = CoarseProblem(g)
    seen = {"panels": 0}

    def checking_precond(w):
        seen["panels"] += 1
        scale = max(1.0, float(np.abs(w).max()))
        assert np.allclose(coarse.project(w), w, rtol=1e-10, atol=1e-12 * scale)
        if kdim:
            assert np.abs(g.T @ w).max() <= 1e-10 * scale * np.abs(g).max()
        return w

    res = block_pcpg(lambda x: f @ x, d, g, e, apply_precond=checking_precond)
    assert res.converged and seen["panels"] >= 1


@settings(max_examples=15, deadline=None)
@given(m=st.integers(8, 20), kdim=st.integers(0, 2), seed=st.integers(0, 10_000))
def test_property_dependent_columns_deflate_and_match(m, kdim, seed):
    """Linearly dependent RHS columns (duplicates up to scale) drive the
    small block systems singular; the pseudo-inverse path still converges
    to the per-column answers."""
    f, g, rng = _dual_system(m, kdim, seed)
    d = rng.standard_normal((m, 3))
    d[:, 1] = 2.0 * d[:, 0]  # dependent from iteration one
    e = rng.standard_normal((kdim, 3))
    e[:, 1] = 2.0 * e[:, 0]

    block = block_pcpg(lambda x: f @ x, d, g, e)
    lam_seq, results = _solve_columns(f, d, g, e)
    assert block.converged
    scale = max(1.0, float(np.abs(lam_seq).max()))
    assert np.allclose(block.lam, lam_seq, rtol=RTOL, atol=ATOL * scale)


def test_staged_deflation_freezes_converged_columns():
    """An easy column (RHS spanned by two eigenvectors) deflates many
    iterations before a generic column; its residual history is frozen at
    the converged value from that point on."""
    rng = np.random.default_rng(7)
    m = 40
    q = rng.standard_normal((m, m))
    f = q @ q.T + m * np.eye(m)
    vals, vecs = np.linalg.eigh(f)
    g = np.zeros((m, 0))
    easy = f @ (vecs[:, 0] + vecs[:, -1])  # Krylov degree 2
    hard = rng.standard_normal(m)
    d = np.stack([easy, hard], axis=1)
    e = np.zeros((0, 2))

    res = block_pcpg(lambda x: f @ x, d, g, e)
    assert res.converged
    assert res.deflated_at[0] >= 0 and res.deflated_at[1] >= 0
    assert res.deflated_at[0] < res.deflated_at[1]
    hist = np.array(res.residuals)
    j, at = 0, int(res.deflated_at[0])
    # frozen after deflation: the recorded norm never changes again
    assert np.all(hist[at:, j] == hist[at, j])
    # and it is genuinely converged relative to its own start
    assert hist[at, j] <= 1e-10 * hist[0, j]
    # column_residuals exposes the same frozen history
    assert res.column_residuals(j) == [float(v) for v in hist[:, j]]


def test_zero_residual_panel_converges_at_start():
    f, g, _ = _dual_system(10, 0, seed=3)
    d = np.zeros((10, 2))
    e = np.zeros((0, 2))
    res = block_pcpg(lambda x: f @ x, d, g, e)
    assert res.iterations == 0 and res.converged
    assert np.array_equal(res.deflated_at, np.zeros(2, dtype=int))
    assert np.all(res.lam == 0.0)


def test_block_pcpg_input_validation():
    f, g, rng = _dual_system(8, 2, seed=1)
    d = rng.standard_normal((8, 2))
    e = rng.standard_normal((2, 2))
    with pytest.raises(ValueError, match="panel"):
        block_pcpg(lambda x: f @ x, d[:, 0], g, e)
    with pytest.raises(ValueError, match="E must be a panel"):
        block_pcpg(lambda x: f @ x, d, g, e[:, :1])
    with pytest.raises(ValueError, match="tol"):
        block_pcpg(lambda x: f @ x, d, g, e, tol=0.0)
    with pytest.raises(ValueError, match="max_iter"):
        block_pcpg(lambda x: f @ x, d, g, e, max_iter=0)


def test_max_iter_cap_reports_not_converged():
    f, g, rng = _dual_system(16, 0, seed=5)
    d = rng.standard_normal((16, 2))
    res = block_pcpg(lambda x: f @ x, d, g, np.zeros((0, 2)), max_iter=2)
    assert not res.converged and res.iterations == 2
    assert np.all(res.deflated_at == -1)


def test_result_helpers():
    res = BlockPcpgResult(
        lam=np.zeros((4, 2)),
        alpha=np.zeros((0, 2)),
        iterations=0,
        converged=True,
        residuals=[np.array([1.0, 2.0]), np.array([0.5, 1.0])],
        deflated_at=np.array([1, 1]),
    )
    assert res.n_rhs == 2
    assert res.column_residuals(1) == [2.0, 1.0]
    assert np.array_equal(res.final_residuals, np.array([0.5, 1.0]))


# ---------------------------------------------------------------------------
# end to end: mesh zoo x partitioner x preconditioner
# ---------------------------------------------------------------------------


_WORKLOADS = {}


def _workload(mesh: str, partitioner: str):
    """One decomposed well-posed workload per (mesh, partitioner)."""
    key = (mesh, partitioner)
    if key not in _WORKLOADS:
        from repro.dd import decompose
        from repro.fem import heat_problem, heat_transfer_2d
        from repro.part import make_mesh

        if mesh == "square":
            problem = heat_transfer_2d(12, dirichlet=("left",))
            _WORKLOADS[key] = decompose(problem, grid=(3, 3))
        else:
            problem = heat_problem(make_mesh(mesh, 12, seed=0), dirichlet=("boundary",))
            _WORKLOADS[key] = decompose(
                problem, n_subdomains=6, partitioner=partitioner, seed=0
            )
    return _WORKLOADS[key]


@settings(max_examples=8, deadline=None)
@given(
    mesh=st.sampled_from(("square", "jittered", "lshape", "strip")),
    partitioner=st.sampled_from(("rcb", "spectral")),
    preconditioner=st.sampled_from(("none", "lumped", "dirichlet")),
    n_rhs=st.sampled_from((2, 3)),
)
def test_property_solve_block_matches_sequential_end_to_end(
    mesh, partitioner, preconditioner, n_rhs
):
    """Block and sequential panel solves agree on multipliers and primal
    solutions across the mesh zoo, both partitioners and every
    preconditioner."""
    from repro.feti.solver import FetiSolver

    dec = _workload(mesh, partitioner)
    block = FetiSolver(
        dec, approach="impl_mkl", preconditioner=preconditioner
    ).solve_block(n_rhs=n_rhs, block=True, grouped=True, seed=0)
    seq = FetiSolver(
        dec, approach="impl_mkl", preconditioner=preconditioner
    ).solve_block(n_rhs=n_rhs, block=False, grouped=False, seed=0)

    assert block.converged and seq.converged
    scale = max(1.0, float(np.abs(seq.u).max()))
    assert np.allclose(block.u, seq.u, rtol=RTOL, atol=ATOL * scale)
    lam_seq = np.stack([r.lam for r in seq.infos], axis=1)
    lscale = max(1.0, float(np.abs(lam_seq).max()))
    assert np.allclose(block.infos[0].lam, lam_seq, rtol=RTOL, atol=ATOL * lscale)
    # shared Krylov information: block never meaningfully slower than the
    # worst sequential column
    assert block.iterations <= max(r.iterations for r in seq.infos) + 1


def test_solve_block_k1_matches_scalar_solver_path():
    """A one-column panel through the block path reproduces the classic
    single-RHS solve (the panel's column 0 is the problem's own load)."""
    from repro.feti.solver import FetiSolver

    dec = _workload("square", "rcb")
    scalar = FetiSolver(dec, approach="impl_mkl", preconditioner="lumped").solve()
    block = FetiSolver(
        dec, approach="impl_mkl", preconditioner="lumped"
    ).solve_block(n_rhs=1, block=True, grouped=False, seed=0)
    assert block.converged
    assert block.iterations == scalar.info.iterations
    scale = max(1.0, float(np.abs(scalar.u).max()))
    assert np.allclose(block.u[:, 0], scalar.u, rtol=RTOL, atol=ATOL * scale)


def test_solve_block_records_stats_and_timings():
    from repro.feti.solver import FetiSolver

    dec = _workload("square", "rcb")
    solver = FetiSolver(dec, approach="impl_mkl", preconditioner="lumped")
    sol = solver.solve_block(n_rhs=3, block=True, grouped=True, seed=0)
    st_ = sol.stats
    assert st_.n_rhs == 3 and sol.n_rhs == 3
    assert st_.n_subdomains == dec.n_subdomains
    assert 1 <= st_.n_groups <= st_.n_subdomains
    assert st_.launches_per_iteration == 6 * st_.n_groups
    assert st_.launches_sequential_per_iteration == 6 * st_.n_subdomains
    assert st_.launch_reduction >= 1.0
    assert st_.iterations == sol.iterations
    assert solver.timings.n_rhs == 3
    assert "RHS column(s)" in st_.summary()


def test_block_pcpg_records_convergence_metrics():
    """Tracing a block solve yields per-iteration convergence metrics:
    iteration/deflation counters and the residual-decay histogram."""
    from repro.obs import tracing

    f, g, rng = _dual_system(12, 2, seed=3)
    d = rng.standard_normal((12, 3))
    e = rng.standard_normal((2, 3))
    with tracing() as tracer:
        result = block_pcpg(lambda x: f @ x, d, g, e, tol=1e-10)
    assert result.converged
    m = tracer.metrics
    assert m.counter("pcpg.iterations") == result.iterations
    # every column eventually converged and left the active set
    assert m.counter("pcpg.deflations") == d.shape[1]
    decay = m.histogram("pcpg.residual_decay")
    assert decay is not None and decay.n >= 1
    assert decay.vmin is not None and decay.vmin > 0.0
    # an SPD system with exact arithmetic contracts; allow slack for the
    # odd stalled iteration but the median decay must be real progress
    assert decay.percentile(50) < 1.0
