"""Tests for the Li–Xi–Saad-style low-rank preconditioner correction.

Contract: ``rank=0`` is a bitwise no-op forward to the base
preconditioner; the added term ``U diag(theta) U^T`` is symmetric PSD
(hypothesis over random panels); corrected modes of the preconditioned
projected operator land on eigenvalue exactly 1; and on the
ill-conditioned strip-with-holes workload a rank ``r > 0`` correction
never needs more PCPG iterations than the uncorrected preconditioner.

One deliberate clipping consequence is pinned here too: with ``theta_i =
max(0, 1/mu_i - 1)`` the correction only carries modes *below* 1.  The
lumped/Dirichlet FETI preconditioners already bound the preconditioned
spectrum below by 1, so on top of them the correction is an exact no-op
(``effective_rank == 0``) — the knob pays off over weaker bases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.feti.pcpg import pcpg
from repro.feti.preconditioner import (
    IdentityPreconditioner,
    LowRankCorrection,
    LumpedPreconditioner,
)
from repro.feti.projector import CoarseProblem


def _dual_system(m: int, kdim: int, seed: int, spread: float = 100.0):
    """Dense SPD dual operator with a wide spectrum + random kernel G."""
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((m, m)))
    vals = np.geomspace(1.0 / spread, spread, m)
    f = (q * vals) @ q.T
    g = rng.standard_normal((m, kdim)) if kdim else np.zeros((m, 0))
    return f, g, rng


def _panel_apply(f):
    return lambda p: f @ p


# ---------------------------------------------------------------------------
# rank 0: bitwise no-op
# ---------------------------------------------------------------------------


def test_rank_zero_is_bitwise_noop():
    f, g, rng = _dual_system(16, 2, seed=0)
    base = IdentityPreconditioner()
    lr = LowRankCorrection(base, _panel_apply(f), g, rank=0)
    assert lr.effective_rank == 0
    for shape in ((16,), (16, 3)):
        w = rng.standard_normal(shape)
        assert np.array_equal(lr.apply(w), base.apply(w))
        assert np.array_equal(lr.correction(w), np.zeros(shape))


def test_rank_validation():
    f, g, _ = _dual_system(8, 0, seed=1)
    with pytest.raises(ValueError, match="rank"):
        LowRankCorrection(IdentityPreconditioner(), _panel_apply(f), g, rank=-1)


# ---------------------------------------------------------------------------
# the correction term: symmetric PSD, apply = base + correction
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(8, 24),
    kdim=st.integers(0, 3),
    rank=st.integers(1, 6),
    seed=st.integers(0, 10_000),
    k=st.integers(1, 4),
)
def test_property_correction_symmetric_psd_over_random_panels(m, kdim, rank, seed, k):
    f, g, rng = _dual_system(m, kdim, seed)
    lr = LowRankCorrection(IdentityPreconditioner(), _panel_apply(f), g, rank)
    assert 0 <= lr.effective_rank <= rank
    w = rng.standard_normal((m, k))
    c = lr.correction(w)
    # PSD: every column's quadratic form is non-negative
    quad = np.einsum("ij,ij->j", w, c)
    assert np.all(quad >= -1e-10 * np.abs(w).max() ** 2)
    # symmetry: <v, C w> == <C v, w> on random probes
    v = rng.standard_normal((m, k))
    lhs = np.einsum("ij,ij->j", v, c)
    rhs = np.einsum("ij,ij->j", lr.correction(v), w)
    scale = max(1.0, float(np.abs(lhs).max()), float(np.abs(rhs).max()))
    assert np.allclose(lhs, rhs, rtol=1e-9, atol=1e-11 * scale)
    # composition: apply = base + correction, panel and vector shapes agree
    assert np.allclose(lr.apply(w), w + c, rtol=1e-12, atol=0.0)
    assert np.allclose(lr.apply(w[:, 0]), w[:, 0] + lr.correction(w[:, 0]))


@settings(max_examples=15, deadline=None)
@given(m=st.integers(10, 20), rank=st.integers(1, 4), seed=st.integers(0, 10_000))
def test_property_corrected_modes_land_on_eigenvalue_one(m, rank, seed):
    """The r carried modes of the corrected preconditioned operator sit at
    eigenvalue exactly 1: (M^{-1} + U Th U^T) F (Q u_i) = Q u_i."""
    f, g, _ = _dual_system(m, 0, seed)
    lr = LowRankCorrection(IdentityPreconditioner(), _panel_apply(f), g, rank)
    if lr.effective_rank == 0:
        return
    modes = lr.u
    mapped = lr.apply(f @ modes)
    assert np.allclose(mapped, modes, rtol=1e-8, atol=1e-9)


# ---------------------------------------------------------------------------
# synthetic convergence: correcting the low modes can only help
# ---------------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), rank=st.sampled_from((4, 8)))
def test_property_corrected_iterations_never_worse_synthetic(seed, rank):
    m = 40
    f, g, rng = _dual_system(m, 2, seed, spread=1000.0)
    d = rng.standard_normal(m)
    e = rng.standard_normal(2)
    base = IdentityPreconditioner()
    plain = pcpg(lambda v: f @ v, d, g, e, apply_precond=base.apply)
    lr = LowRankCorrection(base, _panel_apply(f), g, rank)
    assert lr.effective_rank > 0  # wide spectrum: modes below 1 exist
    corrected = pcpg(lambda v: f @ v, d, g, e, apply_precond=lr.apply)
    assert corrected.converged
    assert corrected.iterations <= plain.iterations


# ---------------------------------------------------------------------------
# end to end on the ill-conditioned strip-with-holes mesh
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def strip_solver_parts():
    from repro.dd import decompose
    from repro.fem import heat_problem
    from repro.feti.solver import FetiSolver
    from repro.part import make_mesh

    problem = heat_problem(make_mesh("strip", 16, seed=0), dirichlet=("boundary",))
    dec = decompose(problem, n_subdomains=8, partitioner="rcb", seed=0)
    solver = FetiSolver(dec, approach="impl_mkl", preconditioner="none")
    solver.preprocess()
    op = solver.operator
    d, e = solver._dual_panels([sub.f[:, None] for sub in dec.subdomains])
    return dec, op, d[:, 0], e[:, 0]


def test_strip_corrected_iterations_never_worse(strip_solver_parts):
    dec, op, d, e = strip_solver_parts
    apply_panel = lambda p: np.stack(
        [op.apply(p[:, j]) for j in range(p.shape[1])], axis=1
    )
    base = IdentityPreconditioner()
    plain = pcpg(op.apply, d, op.g, e, apply_precond=base.apply)
    assert plain.converged
    for rank in (4, 16, 32):
        lr = LowRankCorrection(base, apply_panel, op.g, rank)
        assert lr.effective_rank > 0
        res = pcpg(op.apply, d, op.g, e, apply_precond=lr.apply)
        assert res.converged
        assert res.iterations <= plain.iterations


def test_strip_lumped_base_already_bounded_below_by_one(strip_solver_parts):
    """On top of the lumped preconditioner every mu >= 1, theta clips to
    zero and the correction degenerates to a bitwise forward."""
    dec, op, d, e = strip_solver_parts
    apply_panel = lambda p: np.stack(
        [op.apply(p[:, j]) for j in range(p.shape[1])], axis=1
    )
    base = LumpedPreconditioner(dec)
    lr = LowRankCorrection(base, apply_panel, op.g, rank=16)
    assert lr.effective_rank == 0
    rng = np.random.default_rng(0)
    w = rng.standard_normal((op.n_multipliers, 2))
    assert np.array_equal(lr.apply(w), base.apply(w))


def test_solve_block_lowrank_rank_reaches_solution(strip_solver_parts):
    """End-to-end solve_block with the rank knob: same primal panel as the
    uncorrected solve, stats record the rank."""
    from repro.feti.solver import FetiSolver

    dec, _, _, _ = strip_solver_parts
    plain = FetiSolver(dec, approach="impl_mkl", preconditioner="lumped").solve_block(
        n_rhs=2, block=True, grouped=True, lowrank_rank=0, seed=0
    )
    corrected = FetiSolver(
        dec, approach="impl_mkl", preconditioner="lumped"
    ).solve_block(n_rhs=2, block=True, grouped=True, lowrank_rank=8, seed=0)
    assert corrected.converged
    assert corrected.iterations <= plain.iterations + 1
    assert corrected.stats.lowrank_rank == 8
    assert "low-rank" in corrected.stats.summary()
    scale = max(1.0, float(np.abs(plain.u).max()))
    assert np.allclose(corrected.u, plain.u, rtol=1e-8, atol=1e-9 * scale)


def test_setup_cost_charged_once():
    from repro.gpu import A100_40GB, Executor

    f, g, _ = _dual_system(20, 2, seed=9)
    ex = Executor(A100_40GB)
    before = ex.ledger.total.launches
    lr = LowRankCorrection(
        IdentityPreconditioner(), _panel_apply(f), g, rank=4, executor=ex
    )
    assert lr.effective_rank > 0
    assert ex.ledger.total.launches == before + 6
    assert ex.ledger.total.flops > 0
