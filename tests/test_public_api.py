"""Top-level public API: lazy exports and an end-to-end integration pass."""

from __future__ import annotations

import numpy as np
import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_lazy_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None
    assert "SchurAssembler" in dir(repro)


def test_unknown_attribute():
    with pytest.raises(AttributeError, match="no attribute"):
        repro.warp_drive


def test_end_to_end_through_top_level_api():
    """The README quickstart, via `import repro` only."""
    wl = repro.make_workload(dim=3, target_dofs=729)
    base = repro.SchurAssembler(config=repro.baseline_config("sparse"))
    opt = repro.SchurAssembler(config=repro.default_config("gpu", 3))
    r0 = base.assemble(wl.factor, wl.bt)
    r1 = opt.assemble(wl.factor, wl.bt)
    assert np.allclose(r0.f, r1.f, atol=1e-8)
    assert r0.elapsed > 0 and r1.elapsed > 0

    problem = repro.heat_transfer_2d(12, dirichlet=("left",))
    dec = repro.decompose(problem, grid=(2, 2))
    sol = repro.solve_feti(dec, approach="expl_gpu_opt", tol=1e-10)
    assert np.abs(sol.u - problem.solve_direct()).max() < 1e-7
