"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig05" in out and "table1" in out and "ablation_ordering" in out


def test_cli_solve_2d(capsys):
    rc = main(
        ["solve", "--dim", "2", "--cells", "12", "--grid", "2x2", "--approach", "impl_mkl"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "converged=True" in out
    assert "impl_mkl" in out


def test_cli_solve_auto(capsys):
    rc = main(["solve", "--cells", "12", "--grid", "2x2", "--approach", "auto"])
    assert rc == 0
    assert "approach:" in capsys.readouterr().out


def test_cli_run_saves_results(tmp_path, capsys):
    rc = main(["run", "fig05", "--out", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fig05" in out
    assert (tmp_path / "fig05.txt").exists()


def test_cli_batch(capsys):
    rc = main(["batch", "--dim", "2", "--cells", "12", "--grid", "2x2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "hit rate" in out
    assert "pipeline makespan" in out


def test_cli_batch_no_cache_estimate_only(capsys):
    rc = main(
        [
            "batch",
            "--dim",
            "2",
            "--cells",
            "12",
            "--grid",
            "2x2",
            "--device",
            "cpu",
            "--streams",
            "0",
            "--no-cache",
            "--estimate-only",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "0 hits" in out


def test_cli_unknown_experiment():
    with pytest.raises(ValueError, match="unknown experiment"):
        main(["run", "fig99"])


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_cli_batch_unstructured_mesh_and_partitioner(capsys):
    rc = main(
        [
            "batch", "--mesh", "jittered", "--partitioner", "rcb",
            "--parts", "6", "--cells", "12", "--floating",
            "--signature", "near", "--seed", "1", "--device", "cpu",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "partition:" in out and "edge cut" in out
    assert "geometric class(es)" in out
    assert "grouping:" in out  # the grouping-efficiency line


def test_cli_batch_validates_flag_combinations():
    with pytest.raises(ValueError, match="contradicts"):
        main(["batch", "--mesh", "jittered", "--dim", "3"])
    with pytest.raises(ValueError, match="--parts only applies"):
        main(["batch", "--parts", "8", "--cells", "12"])


# ---------------------------------------------------------------------------
# assembly-as-a-service: work / store


def _svc(tmp_path) -> str:
    return str(tmp_path / "service")


def test_cli_work_submit_run_status(tmp_path, capsys):
    root = _svc(tmp_path)
    rc = main(["work", "submit", "--root", root, "--grid", "2x2", "--cells", "8",
               "--count", "2", "--device", "cpu"])
    assert rc == 0
    assert "submitted 2 assemble job(s)" in capsys.readouterr().out
    rc = main(["work", "run", "--root", root, "--worker-id", "w1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "worker w1: 2 done" in out
    assert "store:" in out
    rc = main(["work", "status", "--root", root, "--jobs", "--strict"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "2 done" in out and "#1 assemble" in out


def test_cli_work_status_strict_fails_on_pending(tmp_path, capsys):
    root = _svc(tmp_path)
    main(["work", "submit", "--root", root, "--device", "cpu"])
    capsys.readouterr()
    assert main(["work", "status", "--root", root, "--strict"]) == 1


def test_cli_work_run_injected_crash_exits_42(tmp_path, capsys):
    root = _svc(tmp_path)
    main(["work", "submit", "--root", root, "--grid", "2x2", "--cells", "8",
          "--device", "cpu"])
    capsys.readouterr()
    rc = main(["work", "run", "--root", root, "--worker-id", "w1",
               "--faults", "worker.job.crash:1"])
    assert rc == 42
    assert "crashed" in capsys.readouterr().err


def test_cli_work_submit_payload_json_overrides(tmp_path, capsys):
    root = _svc(tmp_path)
    rc = main(["work", "submit", "--root", root,
               "--payload", '{"cells": 6, "grid": "2x2", "device": "cpu"}'])
    assert rc == 0
    capsys.readouterr()
    assert main(["work", "run", "--root", root]) == 0


def test_cli_work_run_faults_reach_the_store(tmp_path, capsys):
    """`--faults store.put.torn:1` tears the first commit: the next job
    quarantines and recomputes it, and the store ends up clean."""
    root = _svc(tmp_path)
    main(["work", "submit", "--root", root, "--grid", "2x2", "--cells", "8",
          "--count", "2", "--device", "cpu"])
    capsys.readouterr()
    rc = main(["work", "run", "--root", root, "--worker-id", "w1",
               "--faults", "store.put.torn:1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "worker w1: 2 done" in out
    assert "1 quarantined" in out
    assert main(["store", "verify", "--root", root]) == 0
    assert "1 ok, 0 quarantined" in capsys.readouterr().out


def test_cli_store_stats_ls_verify(tmp_path, capsys):
    root = _svc(tmp_path)
    main(["work", "submit", "--root", root, "--grid", "2x2", "--cells", "8",
          "--device", "cpu"])
    main(["work", "run", "--root", root])
    capsys.readouterr()
    assert main(["store", "stats", "--root", root]) == 0
    out = capsys.readouterr().out
    assert "committed artifact(s)" in out and "symbolic" in out
    assert main(["store", "ls", "--root", root]) == 0
    assert "symbolic" in capsys.readouterr().out
    assert main(["store", "verify", "--root", root]) == 0
    assert "0 quarantined" in capsys.readouterr().out
