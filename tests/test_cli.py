"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig05" in out and "table1" in out and "ablation_ordering" in out


def test_cli_solve_2d(capsys):
    rc = main(
        ["solve", "--dim", "2", "--cells", "12", "--grid", "2x2", "--approach", "impl_mkl"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "converged=True" in out
    assert "impl_mkl" in out


def test_cli_solve_auto(capsys):
    rc = main(["solve", "--cells", "12", "--grid", "2x2", "--approach", "auto"])
    assert rc == 0
    assert "approach:" in capsys.readouterr().out


def test_cli_run_saves_results(tmp_path, capsys):
    rc = main(["run", "fig05", "--out", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fig05" in out
    assert (tmp_path / "fig05.txt").exists()


def test_cli_batch(capsys):
    rc = main(["batch", "--dim", "2", "--cells", "12", "--grid", "2x2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "hit rate" in out
    assert "pipeline makespan" in out


def test_cli_batch_no_cache_estimate_only(capsys):
    rc = main(
        [
            "batch",
            "--dim",
            "2",
            "--cells",
            "12",
            "--grid",
            "2x2",
            "--device",
            "cpu",
            "--streams",
            "0",
            "--no-cache",
            "--estimate-only",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "0 hits" in out


def test_cli_unknown_experiment():
    with pytest.raises(ValueError, match="unknown experiment"):
        main(["run", "fig99"])


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_cli_batch_unstructured_mesh_and_partitioner(capsys):
    rc = main(
        [
            "batch", "--mesh", "jittered", "--partitioner", "rcb",
            "--parts", "6", "--cells", "12", "--floating",
            "--signature", "near", "--seed", "1", "--device", "cpu",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "partition:" in out and "edge cut" in out
    assert "geometric class(es)" in out
    assert "grouping:" in out  # the grouping-efficiency line


def test_cli_batch_validates_flag_combinations():
    with pytest.raises(ValueError, match="contradicts"):
        main(["batch", "--mesh", "jittered", "--dim", "3"])
    with pytest.raises(ValueError, match="--parts only applies"):
        main(["batch", "--parts", "8", "--cells", "12"])
