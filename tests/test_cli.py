"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig05" in out and "table1" in out and "ablation_ordering" in out


def test_cli_solve_2d(capsys):
    rc = main(
        ["solve", "--dim", "2", "--cells", "12", "--grid", "2x2", "--approach", "impl_mkl"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "converged=True" in out
    assert "impl_mkl" in out


def test_cli_solve_auto(capsys):
    rc = main(["solve", "--cells", "12", "--grid", "2x2", "--approach", "auto"])
    assert rc == 0
    assert "approach:" in capsys.readouterr().out


def test_cli_run_saves_results(tmp_path, capsys):
    rc = main(["run", "fig05", "--out", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fig05" in out
    assert (tmp_path / "fig05.txt").exists()


def test_cli_batch(capsys):
    rc = main(["batch", "--dim", "2", "--cells", "12", "--grid", "2x2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "hit rate" in out
    assert "pipeline makespan" in out


def test_cli_batch_no_cache_estimate_only(capsys):
    rc = main(
        [
            "batch",
            "--dim",
            "2",
            "--cells",
            "12",
            "--grid",
            "2x2",
            "--device",
            "cpu",
            "--streams",
            "0",
            "--no-cache",
            "--estimate-only",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "0 hits" in out


def test_cli_unknown_experiment():
    with pytest.raises(ValueError, match="unknown experiment"):
        main(["run", "fig99"])


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_cli_batch_unstructured_mesh_and_partitioner(capsys):
    rc = main(
        [
            "batch", "--mesh", "jittered", "--partitioner", "rcb",
            "--parts", "6", "--cells", "12", "--floating",
            "--signature", "near", "--seed", "1", "--device", "cpu",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "partition:" in out and "edge cut" in out
    assert "geometric class(es)" in out
    assert "grouping:" in out  # the grouping-efficiency line


def test_cli_batch_validates_flag_combinations():
    with pytest.raises(ValueError, match="contradicts"):
        main(["batch", "--mesh", "jittered", "--dim", "3"])
    with pytest.raises(ValueError, match="--parts only applies"):
        main(["batch", "--parts", "8", "--cells", "12"])


# ---------------------------------------------------------------------------
# assembly-as-a-service: work / store


def _svc(tmp_path) -> str:
    return str(tmp_path / "service")


def test_cli_work_submit_run_status(tmp_path, capsys):
    root = _svc(tmp_path)
    rc = main(["work", "submit", "--root", root, "--grid", "2x2", "--cells", "8",
               "--count", "2", "--device", "cpu"])
    assert rc == 0
    assert "submitted 2 assemble job(s)" in capsys.readouterr().out
    rc = main(["work", "run", "--root", root, "--worker-id", "w1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "worker w1: 2 done" in out
    assert "store:" in out
    rc = main(["work", "status", "--root", root, "--jobs", "--strict"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "2 done" in out and "#1 assemble" in out


def test_cli_work_status_strict_fails_on_pending(tmp_path, capsys):
    root = _svc(tmp_path)
    main(["work", "submit", "--root", root, "--device", "cpu"])
    capsys.readouterr()
    assert main(["work", "status", "--root", root, "--strict"]) == 1


def test_cli_work_run_injected_crash_exits_42(tmp_path, capsys):
    root = _svc(tmp_path)
    main(["work", "submit", "--root", root, "--grid", "2x2", "--cells", "8",
          "--device", "cpu"])
    capsys.readouterr()
    rc = main(["work", "run", "--root", root, "--worker-id", "w1",
               "--faults", "worker.job.crash:1"])
    assert rc == 42
    assert "crashed" in capsys.readouterr().err


def test_cli_work_submit_payload_json_overrides(tmp_path, capsys):
    root = _svc(tmp_path)
    rc = main(["work", "submit", "--root", root,
               "--payload", '{"cells": 6, "grid": "2x2", "device": "cpu"}'])
    assert rc == 0
    capsys.readouterr()
    assert main(["work", "run", "--root", root]) == 0


def test_cli_work_run_faults_reach_the_store(tmp_path, capsys):
    """`--faults store.put.torn:1` tears the first commit: the next job
    quarantines and recomputes it, and the store ends up clean."""
    root = _svc(tmp_path)
    main(["work", "submit", "--root", root, "--grid", "2x2", "--cells", "8",
          "--count", "2", "--device", "cpu"])
    capsys.readouterr()
    rc = main(["work", "run", "--root", root, "--worker-id", "w1",
               "--faults", "store.put.torn:1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "worker w1: 2 done" in out
    assert "1 quarantined" in out
    assert main(["store", "verify", "--root", root]) == 0
    assert "1 ok, 0 quarantined" in capsys.readouterr().out


def test_cli_store_stats_ls_verify(tmp_path, capsys):
    root = _svc(tmp_path)
    main(["work", "submit", "--root", root, "--grid", "2x2", "--cells", "8",
          "--device", "cpu"])
    main(["work", "run", "--root", root])
    capsys.readouterr()
    assert main(["store", "stats", "--root", root]) == 0
    out = capsys.readouterr().out
    assert "committed artifact(s)" in out and "symbolic" in out
    assert main(["store", "ls", "--root", root]) == 0
    assert "symbolic" in capsys.readouterr().out
    assert main(["store", "verify", "--root", root]) == 0
    assert "0 quarantined" in capsys.readouterr().out


def test_cli_work_trace_dir_end_to_end_fleet(tmp_path, capsys):
    """Two-worker drill with tracing: crash, reclaim, merge, report."""
    import json

    root = _svc(tmp_path)
    traces = str(tmp_path / "traces")
    assert main(["work", "submit", "--root", root, "--grid", "2x2",
                 "--cells", "8", "--count", "2", "--device", "cpu",
                 "--trace-dir", traces]) == 0
    assert "submit trace written" in capsys.readouterr().out
    rc = main(["work", "run", "--root", root, "--worker-id", "w1",
               "--faults", "worker.job.crash:1", "--lease", "2",
               "--trace-dir", traces])
    assert rc == 42
    assert "crash trace written" in capsys.readouterr().err
    import time

    time.sleep(2.1)  # let w1's stale lease expire
    rc = main(["work", "run", "--root", root, "--worker-id", "w2",
               "--lease", "2", "--backoff", "0.1", "--trace-dir", traces])
    assert rc == 0
    out = capsys.readouterr().out
    assert "worker trace written" in out

    merged_path = tmp_path / "FLEET_TRACE.json"
    rc = main(["trace", "merge",
               str(tmp_path / "traces" / "WORKER_submit.json"),
               str(tmp_path / "traces" / "WORKER_w1.json"),
               str(tmp_path / "traces" / "WORKER_w2.json"),
               "--out", str(merged_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "merged 3 worker trace(s)" in out
    assert "cross-process link(s)" in out
    data = json.loads(merged_path.read_text())
    pids = {ev["args"]["name"] for ev in data["traceEvents"]
            if ev.get("ph") == "M" and ev.get("name") == "process_name"}
    assert pids == {"submit", "w1", "w2"}
    # the reclaimed job draws a flow arrow from the original submit span
    assert any(ev.get("ph") == "f" for ev in data["traceEvents"])

    # the merged trace renders through the normal viewer
    assert main(["trace", str(merged_path), "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "worker.job" in out and "p50" in out

    rc = main(["obs", "report",
               str(tmp_path / "traces" / "WORKER_w1.json"),
               str(tmp_path / "traces" / "WORKER_w2.json")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fleet obs report" in out and "hit rate" in out


def test_cli_trace_merge_requires_inputs(capsys):
    assert main(["trace", "merge"]) == 2
    assert "no input" in capsys.readouterr().err


def test_cli_trace_rejects_multiple_render_files(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    a.write_text("{}")
    b.write_text("{}")
    assert main(["trace", str(a), str(b)]) == 2


def test_cli_trace_renders_metrics_only_file(tmp_path, capsys):
    import json

    path = tmp_path / "metrics.json"
    path.write_text(json.dumps({"counters": {"store.hits": 3}, "gauges": {},
                                "histograms": {}}))
    assert main(["trace", str(path)]) == 0
    captured = capsys.readouterr()
    assert "no spans recorded" in captured.out
    assert "metrics-only" in captured.err


def test_cli_obs_report_json(tmp_path, capsys):
    import json

    path = tmp_path / "w.json"
    path.write_text(json.dumps({"counters": {"worker.jobs_done": 2},
                                "gauges": {}, "histograms": {}}))
    assert main(["obs", "report", str(path), "--json"]) == 0
    captured = capsys.readouterr()
    data = json.loads(captured.out[captured.out.index("{"):])
    assert data["fleet"]["counters"]["worker.jobs_done"] == 2
