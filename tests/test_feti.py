"""Tests for the FETI solver: operators, projector, PCPG, approaches."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.dd import decompose
from repro.fem import heat_transfer_2d, heat_transfer_3d
from repro.feti import (
    APPROACHES,
    CoarseProblem,
    FetiSolver,
    build_dual_operator,
    factorize_subdomain,
    make_approach,
    pcpg,
    solve_feti,
)
from repro.feti.operator import ExplicitLocalOperator, ImplicitLocalOperator


@pytest.fixture(scope="module")
def problem_2d():
    p = heat_transfer_2d(16, dirichlet=("left",))
    return p, p.solve_direct()


@pytest.fixture(scope="module")
def decomposition_2d(problem_2d):
    p, _ = problem_2d
    return decompose(p, grid=(2, 2))


@pytest.mark.parametrize("approach", sorted(APPROACHES))
def test_all_approaches_match_direct(approach, problem_2d, decomposition_2d):
    p, u_direct = problem_2d
    sol = solve_feti(decomposition_2d, approach=approach, tol=1e-12)
    assert sol.info.converged
    assert np.abs(sol.u - u_direct).max() < 1e-7


def test_unknown_approach_rejected(decomposition_2d):
    with pytest.raises(ValueError, match="unknown approach"):
        solve_feti(decomposition_2d, approach="expl_warp")


def test_chain_gluing_and_no_precond(problem_2d):
    p, u_direct = problem_2d
    dec = decompose(p, grid=(3, 3), gluing="chain")
    sol = solve_feti(dec, approach="impl_mkl", preconditioner="none", tol=1e-12)
    assert np.abs(sol.u - u_direct).max() < 1e-7


def test_lumped_precond_reduces_iterations(problem_2d):
    p, _ = problem_2d
    dec = decompose(p, grid=(4, 4))
    none = solve_feti(dec, approach="impl_mkl", preconditioner="none", tol=1e-10)
    lumped = solve_feti(dec, approach="impl_mkl", preconditioner="lumped", tol=1e-10)
    assert lumped.iterations <= none.iterations


def test_3d_solve():
    p = heat_transfer_3d(8, dirichlet=("left",))
    dec = decompose(p, grid=(2, 2, 2))
    sol = solve_feti(dec, approach="expl_gpu_opt", tol=1e-12)
    assert np.abs(sol.u - p.solve_direct()).max() < 1e-7


def test_no_floating_subdomains():
    p = heat_transfer_2d(8, dirichlet=("left", "right", "top", "bottom"))
    dec = decompose(p, grid=(2, 1))
    sol = solve_feti(dec, approach="impl_mkl", tol=1e-12)
    assert sol.info.alpha.size == 0  # empty coarse space
    assert np.abs(sol.u - p.solve_direct()).max() < 1e-8


def test_implicit_explicit_operators_agree(decomposition_2d, rng):
    """F lam must be identical whether applied implicitly or explicitly."""
    dec = decomposition_2d
    impl_ops, expl_ops = [], []
    for sub in dec.subdomains:
        factor = factorize_subdomain(sub)
        impl_ops.append(ImplicitLocalOperator(factor=factor, bt=sub.bt))
        res = make_approach("expl_gpu_opt").preprocess_subdomain(sub)
        expl_ops.append(res.local_op)
    op_i = build_dual_operator(dec, impl_ops)
    op_e = build_dual_operator(dec, expl_ops)
    lam = rng.standard_normal(dec.n_multipliers)
    assert np.allclose(op_i.apply(lam), op_e.apply(lam), atol=1e-8)
    assert np.allclose(op_i.d, op_e.d, atol=1e-10)
    assert np.allclose(op_i.g, op_e.g, atol=1e-12)


def test_dual_operator_spsd(decomposition_2d, rng):
    dec = decomposition_2d
    ops = [
        ImplicitLocalOperator(factor=factorize_subdomain(s), bt=s.bt)
        for s in dec.subdomains
    ]
    op = build_dual_operator(dec, ops)
    for _ in range(5):
        lam = rng.standard_normal(dec.n_multipliers)
        assert lam @ op.apply(lam) >= -1e-10


def test_solver_stage_api(decomposition_2d):
    solver = FetiSolver(decomposition_2d, approach="expl_mkl", tol=1e-11)
    timings = solver.preprocess()
    assert timings.preprocessing_total > 0
    assert len(timings.factorization) == decomposition_2d.n_subdomains
    sol = solver.solve()
    assert sol.info.converged
    # Implicit has zero assembly time; explicit nonzero.
    assert sum(timings.assembly) > 0
    impl = FetiSolver(decomposition_2d, approach="impl_mkl")
    t2 = impl.preprocess()
    assert sum(t2.assembly) == 0.0


def test_solve_without_preprocess_autoruns(decomposition_2d):
    solver = FetiSolver(decomposition_2d, approach="impl_mkl", tol=1e-11)
    sol = solver.solve()  # must auto-preprocess
    assert sol.info.converged


def test_explicit_apply_faster_than_implicit_on_cpu(decomposition_2d):
    """Explicit per-iteration application must be cheaper (the premise of
    the whole explicit approach)."""
    impl = FetiSolver(decomposition_2d, approach="impl_mkl")
    expl = FetiSolver(decomposition_2d, approach="expl_mkl")
    ti = impl.preprocess()
    te = expl.preprocess()
    assert te.apply_mean_per_subdomain < ti.apply_mean_per_subdomain


def test_timings_preprocessing_ordering(decomposition_2d):
    """impl_mkl prep < impl_cholmod prep; expl approaches cost extra."""
    prep = {}
    for name in ("impl_mkl", "impl_cholmod", "expl_mkl"):
        s = FetiSolver(decomposition_2d, approach=name)
        prep[name] = s.preprocess().preprocessing_total
    assert prep["impl_mkl"] < prep["impl_cholmod"]
    assert prep["expl_mkl"] > prep["impl_mkl"]


# ---------------------------------------------------------------------------
# projector / pcpg unit tests
# ---------------------------------------------------------------------------


def test_coarse_problem_projection(rng):
    g = rng.standard_normal((20, 3))
    coarse = CoarseProblem(g)
    x = rng.standard_normal(20)
    px = coarse.project(x)
    assert np.allclose(g.T @ px, 0.0, atol=1e-10)  # P x in null(G^T)
    assert np.allclose(coarse.project(px), px, atol=1e-10)  # idempotent
    e = rng.standard_normal(3)
    lam0 = coarse.feasible_point(e)
    assert np.allclose(g.T @ lam0, e, atol=1e-10)


def test_coarse_problem_empty_kernel(rng):
    coarse = CoarseProblem(np.zeros((10, 0)))
    x = rng.standard_normal(10)
    assert np.array_equal(coarse.project(x), x)
    assert np.array_equal(coarse.feasible_point(np.zeros(0)), np.zeros(10))
    assert coarse.alpha_from(x).size == 0


def test_coarse_problem_rank_deficient():
    g = np.ones((6, 2))  # two identical kernel columns
    coarse = CoarseProblem(g)
    x = np.arange(6, dtype=float)
    px = coarse.project(x)
    assert np.allclose(g.T @ px, 0.0, atol=1e-8)


def test_pcpg_on_spd_system(rng):
    """PCPG with empty G reduces to plain CG."""
    n = 30
    a = rng.standard_normal((n, n))
    a = a @ a.T + n * np.eye(n)
    b = rng.standard_normal(n)
    res = pcpg(lambda x: a @ x, b, np.zeros((n, 0)), np.zeros(0), tol=1e-12)
    assert res.converged
    assert np.allclose(a @ res.lam, b, atol=1e-6)


def test_pcpg_respects_constraint(rng):
    n, k = 25, 2
    a = rng.standard_normal((n, n))
    a = a @ a.T + n * np.eye(n)
    g = rng.standard_normal((n, k))
    e = rng.standard_normal(k)
    res = pcpg(lambda x: a @ x, rng.standard_normal(n), g, e, tol=1e-10)
    assert np.allclose(g.T @ res.lam, e, atol=1e-8)


def test_pcpg_validates(rng):
    with pytest.raises(ValueError):
        pcpg(lambda x: x, np.ones(3), np.zeros((4, 0)), np.zeros(0))
    with pytest.raises(ValueError):
        pcpg(lambda x: x, np.ones(3), np.zeros((3, 0)), np.zeros(0), tol=0.0)
    with pytest.raises(ValueError):
        pcpg(lambda x: x, np.ones(3), np.zeros((3, 0)), np.zeros(0), max_iter=0)


def test_pcpg_iteration_history(decomposition_2d):
    sol = solve_feti(decomposition_2d, approach="impl_mkl", tol=1e-10)
    res = sol.info.residuals
    assert len(res) == sol.iterations + 1
    assert res[-1] <= 1e-10 * res[0]
    assert sol.info.final_residual == res[-1]
