"""Shared test fixtures and matrix generators."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp


def random_spd(n: int, density: float = 0.05, seed: int = 0) -> sp.csr_matrix:
    """Random sparse SPD matrix: symmetric pattern + diagonal dominance."""
    a = sp.random(n, n, density=density, random_state=seed)
    a = a + a.T + sp.eye(n) * (n * 0.5 + 1.0)
    return sp.csr_matrix(a)


def laplacian_1d(n: int, neumann: bool = False) -> sp.csr_matrix:
    """1-D Laplacian; with *neumann* the matrix is singular (kernel = const)."""
    main = np.full(n, 2.0)
    if neumann:
        main[0] = main[-1] = 1.0
    off = np.full(n - 1, -1.0)
    return sp.csr_matrix(sp.diags([off, main, off], [-1, 0, 1]))


def laplacian_2d(nx: int, ny: int) -> sp.csr_matrix:
    """2-D 5-point Laplacian on an nx-by-ny grid (Dirichlet, SPD)."""
    ix = sp.eye(nx)
    iy = sp.eye(ny)
    lx = laplacian_1d(nx)
    ly = laplacian_1d(ny)
    return sp.csr_matrix(sp.kron(iy, lx) + sp.kron(ly, ix))


def grid_coords(nx: int, ny: int) -> np.ndarray:
    """Coordinates matching :func:`laplacian_2d`'s ordering."""
    xs, ys = np.meshgrid(np.arange(nx), np.arange(ny))
    return np.column_stack([xs.ravel(), ys.ravel()]).astype(np.float64)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
