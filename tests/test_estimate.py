"""The dry-run estimator must charge *identical* costs to the executed path."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    AssemblyConfig,
    SchurAssembler,
    baseline_config,
    by_count,
    by_size,
    default_config,
)
from repro.core.estimate import FactorPattern, estimate_assembly
from repro.dd import decompose
from repro.fem import heat_transfer_2d
from repro.gpu import A100_40GB, EPYC_7763_CORE
from repro.sparse import cholesky
from tests.conftest import random_spd


@pytest.fixture(scope="module")
def workload():
    p = heat_transfer_2d(20, dirichlet=("left",))
    dec = decompose(p, grid=(2, 2))
    sub = next(s for s in dec.subdomains if s.floating)
    factor = cholesky(sub.regularized(), ordering="nd", coords=sub.coords)
    return factor, sub.bt


CONFIGS = [
    baseline_config("sparse"),
    baseline_config("dense"),
    default_config("gpu", 2),
    default_config("gpu", 3),
    default_config("cpu", 2),
    default_config("cpu", 3),
    AssemblyConfig(
        trsm_variant="rhs_split",
        syrk_variant="output_split",
        trsm_blocks=by_size(13),
        syrk_blocks=by_count(4),
        factor_storage="sparse",
    ),
    AssemblyConfig(
        trsm_variant="rhs_split",
        syrk_variant="input_split",
        trsm_blocks=by_count(3),
        syrk_blocks=by_size(17),
        factor_storage="dense",
    ),
    AssemblyConfig(
        trsm_variant="factor_split",
        syrk_variant="output_split",
        trsm_blocks=by_size(11),
        syrk_blocks=by_size(9),
        factor_storage="sparse",
        prune=False,
    ),
    AssemblyConfig(
        trsm_variant="factor_split",
        syrk_variant="input_split",
        trsm_blocks=by_size(7),
        syrk_blocks=by_size(1000),
        factor_storage="dense",
        prune=True,
    ),
]


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
@pytest.mark.parametrize("spec", [A100_40GB, EPYC_7763_CORE], ids=lambda s: s.kind)
def test_estimate_matches_executed_breakdown(config, spec, workload):
    factor, bt = workload
    assembler = SchurAssembler(config=config, spec=spec)
    executed = assembler.assemble(factor, bt)
    estimated = assembler.estimate(factor, bt)
    for stage in ("transfer", "permute", "trsm", "syrk"):
        assert estimated[stage] == pytest.approx(
            executed.breakdown[stage], rel=1e-12, abs=1e-18
        ), stage
    assert estimated["total"] == pytest.approx(executed.elapsed, rel=1e-12)


def test_estimate_random_matrix_agreement():
    factor = cholesky(random_spd(60, 0.08, 5), ordering="amd")
    bt = sp.random(60, 18, density=0.12, random_state=6, format="csc")
    cfg = default_config("gpu", 3).with_overrides(trsm_blocks=by_size(9))
    asm = SchurAssembler(config=cfg)
    assert asm.estimate(factor, bt)["total"] == pytest.approx(
        asm.assemble(factor, bt).elapsed, rel=1e-12
    )


def test_factor_pattern_helpers(workload):
    factor, _ = workload
    patt = FactorPattern.from_factor(factor)
    assert patt.nnz == factor.nnz
    assert patt.tail_nnz(0) == factor.nnz
    assert patt.tail_nnz(factor.n) == 0
    # Whole-matrix block equals nnz; empty block is zero.
    assert patt.block_nnz(0, patt.n, 0, patt.n) == patt.nnz
    assert patt.block_nnz(0, 0, 0, patt.n) == 0
    dense = factor.l.toarray() != 0
    r0, r1, c0, c1 = 3, 40, 2, 30
    assert patt.block_nnz(r0, r1, c0, c1) == int(dense[r0:r1, c0:c1].sum())
    assert patt.block_nonempty_rows(r0, r1, c0, c1) == int(
        dense[r0:r1, c0:c1].any(axis=1).sum()
    )


def test_estimate_without_stepped_permutation(workload):
    factor, bt = workload
    asm = SchurAssembler(config=baseline_config("sparse"), spec=A100_40GB)
    est = asm.estimate(factor, bt)
    assert est["total"] > 0


def test_estimate_validates(workload):
    factor, bt = workload
    with pytest.raises(ValueError):
        estimate_assembly(factor, bt.toarray(), baseline_config(), A100_40GB)
    with pytest.raises(ValueError):
        estimate_assembly(
            factor, sp.csc_matrix((factor.n + 1, 2)), baseline_config(), A100_40GB
        )
