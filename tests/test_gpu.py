"""Tests for the simulated GPU substrate: specs, cost model, kernels, runtime."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import (
    A100_40GB,
    EPYC_7763_CORE,
    PCIE4_X16,
    DeviceSpec,
    Executor,
    KernelCost,
    MemoryPool,
    OutOfDeviceMemoryError,
    SimulatedGpu,
    cpu_executor,
    csx_bytes,
    dense_bytes,
    gpu_executor,
)
from repro.gpu import kernels
from repro.sparse import cholesky
from repro.util import trsm_dense_flops
from tests.conftest import random_spd


# ---------------------------------------------------------------------------
# specs and cost model
# ---------------------------------------------------------------------------


def test_device_spec_validation():
    with pytest.raises(ValueError):
        DeviceSpec("x", "tpu", 1e9, 1e9, 0, 0.5, 1, 0.5, 1e9)
    with pytest.raises(ValueError):
        A100_40GB.with_overrides(peak_flops=-1)
    spec = A100_40GB.with_overrides(launch_overhead=0.0)
    assert spec.launch_overhead == 0.0
    assert A100_40GB.launch_overhead > 0  # original untouched


def test_transfer_time_monotone():
    assert PCIE4_X16.time(0) == PCIE4_X16.latency
    assert PCIE4_X16.time(2e9) > PCIE4_X16.time(1e9)
    with pytest.raises(ValueError):
        PCIE4_X16.time(-1)


def test_kernel_cost_validation():
    with pytest.raises(ValueError):
        KernelCost(flops=-1)
    with pytest.raises(ValueError):
        KernelCost(bytes_moved=-1)


def test_cost_addition_accumulates():
    a = KernelCost(flops=100, bytes_moved=10, launches=1, char_dim=10)
    b = KernelCost(flops=300, bytes_moved=30, launches=2, char_dim=50)
    c = a + b
    assert c.flops == 400 and c.bytes_moved == 40 and c.launches == 3
    assert 10 < c.char_dim < 50  # flop-weighted


def test_time_on_launch_floor():
    tiny = KernelCost(flops=1, bytes_moved=1, launches=1, char_dim=1)
    assert tiny.time_on(A100_40GB) >= A100_40GB.launch_overhead


def test_time_on_compute_asymptote():
    big = KernelCost(flops=1e15, bytes_moved=1.0, launches=1, char_dim=1e6)
    t = big.time_on(A100_40GB)
    ideal = 1e15 / (A100_40GB.peak_flops * A100_40GB.eff_max)
    assert t == pytest.approx(ideal, rel=0.01)


def test_time_on_memory_bound():
    # Lots of bytes, no flops: time == bytes / bandwidth.
    c = KernelCost(flops=0, bytes_moved=1.555e12, launches=0, char_dim=1)
    assert c.time_on(A100_40GB) == pytest.approx(1.0, rel=1e-6)


def test_sparse_discount_applies():
    dense = KernelCost(flops=1e12, bytes_moved=0, launches=0, char_dim=1e5, sparse=False)
    sparse = KernelCost(flops=1e12, bytes_moved=0, launches=0, char_dim=1e5, sparse=True)
    assert sparse.time_on(A100_40GB) > 5 * dense.time_on(A100_40GB)


def test_gpu_beats_cpu_large_loses_small():
    big = KernelCost(
        flops=trsm_dense_flops(30_000, 6_000),
        bytes_moved=dense_bytes((30_000, 6_000)),
        char_dim=6_000,
    )
    assert big.time_on(EPYC_7763_CORE) > 50 * big.time_on(A100_40GB)
    # At tiny sizes the two are within an order of magnitude (launch bound).
    small = KernelCost(flops=1e4, bytes_moved=1e4, char_dim=8)
    ratio = small.time_on(A100_40GB) / small.time_on(EPYC_7763_CORE)
    assert ratio > 0.3


def test_byte_helpers():
    assert dense_bytes((10, 10)) == 800
    assert dense_bytes((2, 3), (4, 5)) == (6 + 20) * 8
    assert csx_bytes(100, 10) == 100 * 12 + 11 * 4


# ---------------------------------------------------------------------------
# kernels: numerics + cost
# ---------------------------------------------------------------------------


@pytest.fixture
def factor():
    return cholesky(random_spd(80, density=0.06, seed=2), ordering="amd")


def test_kernel_trsm_dense(factor, rng):
    ld = factor.l.toarray()
    x = rng.standard_normal((80, 7))
    x0 = x.copy()
    cost = kernels.trsm_dense(ld, x)
    assert np.allclose(factor.l @ x, x0, atol=1e-9)
    assert cost.flops == trsm_dense_flops(80, 7)
    cost_t = kernels.trsm_dense(ld, x, trans=True)
    assert cost_t.flops == cost.flops


def test_kernel_trsm_sparse(factor, rng):
    x = rng.standard_normal((80, 7))
    x0 = x.copy()
    cost = kernels.trsm_sparse(factor.l, x)
    assert np.allclose(factor.l @ x, x0, atol=1e-9)
    assert cost.sparse


def test_kernel_syrk(rng):
    y = rng.standard_normal((40, 12))
    c = np.ones((12, 12))
    cost = kernels.syrk(y, c, alpha=2.0, beta=1.0)
    assert np.allclose(c, 1.0 + 2.0 * y.T @ y, atol=1e-10)
    assert cost.flops == pytest.approx(40 * 12 * 13)
    c2 = np.full((12, 12), 9.0)
    kernels.syrk(y, c2, beta=0.0)
    assert np.allclose(c2, y.T @ y)


def test_kernel_gemm(rng):
    a = rng.standard_normal((5, 7))
    b = rng.standard_normal((7, 3))
    c = rng.standard_normal((5, 3))
    c0 = c.copy()
    cost = kernels.gemm(a, b, c, alpha=-1.0, beta=1.0)
    assert np.allclose(c, c0 - a @ b, atol=1e-12)
    assert cost.flops == 2 * 5 * 3 * 7
    # transposed A
    at = rng.standard_normal((7, 5))
    c2 = np.zeros((5, 3))
    kernels.gemm(at, b, c2, beta=0.0, trans_a=True)
    assert np.allclose(c2, at.T @ b)


def test_kernel_gemm_validates(rng):
    with pytest.raises(ValueError):
        kernels.gemm(np.ones((2, 3)), np.ones((4, 2)), np.ones((2, 2)))
    with pytest.raises(ValueError):
        kernels.gemm(np.ones((2, 3)), np.ones((3, 2)), np.ones((3, 3)))


def test_kernel_spmm(rng):
    a = sp.random(9, 6, density=0.4, random_state=1, format="csr")
    b = rng.standard_normal((6, 4))
    c = np.zeros((9, 4))
    cost = kernels.spmm(a, b, c, beta=0.0)
    assert np.allclose(c, a @ b)
    assert cost.sparse


def test_kernel_gather_scatter(rng):
    x = rng.standard_normal((10, 4))
    rows = np.array([1, 3, 7])
    packed, _ = kernels.gather_rows(x, rows)
    assert np.array_equal(packed, x[rows])
    target = np.zeros((10, 4))
    kernels.scatter_add_rows(target, rows, packed, sign=-1.0)
    assert np.allclose(target[rows], -x[rows])
    assert np.allclose(np.delete(target, rows, axis=0), 0.0)


def test_kernel_extract_block_and_densify(factor):
    block, _ = kernels.extract_sparse_block(factor.l, 20, 60, 10, 20)
    assert block.shape == (40, 10)
    assert np.allclose(block.toarray(), factor.l[20:60, 10:20].toarray())
    dense, _ = kernels.densify(block)
    assert np.allclose(dense, block.toarray())


def test_kernel_permutations(rng):
    x = rng.standard_normal((6, 9))
    perm = np.random.default_rng(0).permutation(9)
    y, _ = kernels.permute_columns(x, perm)
    assert np.array_equal(y, x[:, perm])
    back, _ = kernels.permute_columns(y, perm, inverse=True)
    assert np.array_equal(back, x)

    f = rng.standard_normal((9, 9))
    fp, _ = kernels.symmetric_permute(f, perm, inverse=False)
    assert np.array_equal(fp, f[np.ix_(perm, perm)])
    fb, _ = kernels.symmetric_permute(fp, perm, inverse=True)
    assert np.allclose(fb, f)


# ---------------------------------------------------------------------------
# executor and simulated GPU
# ---------------------------------------------------------------------------


def test_executor_accumulates_time(factor, rng):
    ex = gpu_executor()
    x = rng.standard_normal((80, 5))
    assert ex.elapsed == 0.0
    ex.trsm_sparse(factor.l, x)
    t1 = ex.elapsed
    assert t1 > 0
    ex.syrk(x, np.zeros((5, 5)), beta=0.0)
    assert ex.elapsed > t1
    assert ex.ledger.calls == 2
    ex.reset()
    assert ex.elapsed == 0.0 and ex.ledger.calls == 0


def test_cpu_executor_slower_on_large_dense(rng):
    a = random_spd(400, density=0.02, seed=3)
    f = cholesky(a, ordering="amd")
    ld = f.l.toarray()
    x = rng.standard_normal((400, 300))
    cpu = cpu_executor()
    gpu = gpu_executor()
    cpu.trsm_dense(ld, x.copy())
    gpu.trsm_dense(ld, x.copy())
    assert cpu.elapsed > gpu.elapsed


def test_streams_run_in_parallel():
    g = SimulatedGpu(n_streams=4)
    c = KernelCost(flops=1e9, bytes_moved=1e6, char_dim=1000)
    ends = [g.submit(i, c)[1] for i in range(4)]
    assert len({round(e, 12) for e in ends}) == 1  # same finish time
    # Serial within one stream:
    s, e = g.submit(0, c)
    assert s == pytest.approx(ends[0])


def test_stream_ready_time_respected():
    g = SimulatedGpu(n_streams=1)
    c = KernelCost(flops=1e6, bytes_moved=1e3, char_dim=100)
    start, _ = g.submit(0, c, t_ready=5.0)
    assert start == 5.0


def test_events_order_streams():
    g = SimulatedGpu(n_streams=2)
    c = KernelCost(flops=1e9, bytes_moved=1e6, char_dim=1000)
    g.submit(0, c)
    ev = g.record_event(0)
    g.wait_event(1, ev)
    start, _ = g.submit(1, c)
    assert start >= ev.time


def test_transfers_priced_by_pcie():
    g = SimulatedGpu(n_streams=1)
    s, e = g.transfer_h2d(0, 24e9)  # one second of PCIe
    assert e - s == pytest.approx(1.0 + PCIE4_X16.latency)
    s2, e2 = g.transfer_d2h(0, 0.0)
    assert e2 - s2 == pytest.approx(PCIE4_X16.latency)


def test_synchronize_and_reset():
    g = SimulatedGpu(n_streams=3)
    g.submit(2, KernelCost(flops=1e10, bytes_moved=0, char_dim=1e4))
    assert g.synchronize() > 0
    g.reset()
    assert g.synchronize() == 0.0


def test_bad_stream_rejected():
    g = SimulatedGpu(n_streams=2)
    with pytest.raises(ValueError):
        g.submit(5, KernelCost())


# ---------------------------------------------------------------------------
# memory pool
# ---------------------------------------------------------------------------


def test_memory_pool_flow():
    p = MemoryPool(capacity=1000)
    a = p.alloc_persistent(300, "sc")
    assert p.available == 700
    t = p.alloc_temporary(600, "y")
    assert p.high_water == 900
    assert p.would_block(200)
    p.free(t)
    assert not p.would_block(200)
    p.free(a)
    assert p.used == 0


def test_memory_pool_persistent_overflow():
    p = MemoryPool(capacity=100)
    with pytest.raises(OutOfDeviceMemoryError):
        p.alloc_persistent(200)


def test_memory_pool_temporary_block_is_error():
    p = MemoryPool(capacity=100)
    with pytest.raises(ValueError, match="would block"):
        p.alloc_temporary(200)


def test_memory_pool_double_free():
    p = MemoryPool(capacity=100)
    a = p.alloc_persistent(10)
    p.free(a)
    with pytest.raises(ValueError, match="double free"):
        p.free(a)


@settings(max_examples=30, deadline=None)
@given(
    flops=st.floats(min_value=0, max_value=1e15),
    nbytes=st.floats(min_value=0, max_value=1e12),
    dim=st.floats(min_value=1, max_value=1e6),
)
def test_property_time_positive_and_monotone(flops, nbytes, dim):
    c = KernelCost(flops=flops, bytes_moved=nbytes, char_dim=dim)
    t = c.time_on(A100_40GB)
    assert t >= 0
    bigger = KernelCost(flops=flops * 2 + 1, bytes_moved=nbytes, char_dim=dim)
    assert bigger.time_on(A100_40GB) >= t
