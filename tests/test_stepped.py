"""Tests for the stepped-shape analysis and permutation."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SteppedShape,
    check_zeros_above_pivots,
    column_pivots,
    is_stepped,
    row_trails,
    stepped_permutation,
)


def _random_bt(n, m, density, seed):
    return sp.random(n, m, density=density, random_state=seed, format="csc")


def test_column_pivots_basic():
    bt = sp.csc_matrix(
        np.array(
            [
                [0.0, 1.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 1.0],
            ]
        )
    )
    assert column_pivots(bt).tolist() == [1, 0, 2]


def test_column_pivots_empty_column():
    bt = sp.csc_matrix((4, 3))
    assert column_pivots(bt).tolist() == [4, 4, 4]


def test_row_trails_basic():
    bt = sp.csc_matrix(
        np.array(
            [
                [0.0, 1.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 1.0],
            ]
        )
    )
    assert row_trails(bt).tolist() == [1, 0, 2]


def test_row_trails_empty_row():
    bt = sp.csc_matrix(np.array([[1.0], [0.0]]))
    assert row_trails(bt).tolist() == [0, -1]


def test_stepped_permutation_sorts_pivots():
    bt = _random_bt(50, 20, 0.1, 3)
    perm, shape = stepped_permutation(bt)
    assert sorted(perm.tolist()) == list(range(20))
    assert np.all(np.diff(shape.pivots) >= 0)
    assert is_stepped(bt[:, perm])


def test_stepped_permutation_stability():
    """Equal pivots keep their relative order (stable sort) — deterministic."""
    bt = sp.csc_matrix(np.array([[1.0, 1.0, 1.0], [0.0, 1.0, 0.0]]))
    perm, _ = stepped_permutation(bt)
    assert perm.tolist() == [0, 1, 2]


def test_shape_validation():
    with pytest.raises(ValueError, match="ascending"):
        SteppedShape(n_rows=5, pivots=np.array([3, 1]))
    with pytest.raises(ValueError):
        SteppedShape(n_rows=5, pivots=np.array([0, 6]))
    with pytest.raises(ValueError):
        SteppedShape(n_rows=-1, pivots=np.array([], dtype=int))


def test_width_below_and_first_pivot():
    shape = SteppedShape(n_rows=10, pivots=np.array([0, 2, 2, 7]))
    assert shape.width_below(0) == 0
    assert shape.width_below(1) == 1
    assert shape.width_below(3) == 3
    assert shape.width_below(10) == 4
    assert shape.first_pivot(0) == 0
    assert shape.first_pivot(1) == 2
    assert shape.first_pivot(4) == 10  # past the end: no pivot
    with pytest.raises(ValueError):
        shape.first_pivot(5)


def test_density():
    full = SteppedShape(n_rows=4, pivots=np.zeros(3, dtype=int))
    assert full.density() == 1.0
    half = SteppedShape(n_rows=4, pivots=np.array([0, 2, 4]))
    assert half.density() == pytest.approx((4 + 2 + 0) / 12)
    assert SteppedShape(n_rows=0, pivots=np.empty(0, dtype=int)).density() == 1.0


def test_is_stepped_dense_input():
    x = np.array([[1.0, 0.0], [1.0, 1.0]])
    assert is_stepped(x)
    y = np.array([[0.0, 1.0], [1.0, 1.0]])
    assert not is_stepped(y)


def test_check_zeros_above_pivots():
    shape = SteppedShape(n_rows=3, pivots=np.array([0, 2]))
    good = np.array([[1.0, 0.0], [2.0, 0.0], [3.0, 4.0]])
    assert check_zeros_above_pivots(good, shape)
    bad = good.copy()
    bad[1, 1] = 1e-3
    assert not check_zeros_above_pivots(bad, shape)
    assert check_zeros_above_pivots(bad, shape, tol=1e-2)
    with pytest.raises(ValueError):
        check_zeros_above_pivots(np.zeros((2, 2)), shape)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 60),
    m=st.integers(1, 25),
    seed=st.integers(0, 10_000),
)
def test_property_permuted_bt_is_stepped(n, m, seed):
    bt = _random_bt(n, m, 0.15, seed)
    perm, shape = stepped_permutation(bt)
    permuted = bt[:, perm]
    assert is_stepped(permuted)
    dense = permuted.toarray()
    assert check_zeros_above_pivots(dense, shape)
    # Pivot positions are exactly the first nonzeros.
    for j in range(m):
        col = dense[:, j]
        nz = np.flatnonzero(col)
        expected = nz[0] if nz.size else n
        assert shape.pivots[j] == expected
