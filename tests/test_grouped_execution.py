"""Tests for the batched (grouped) numeric execution path.

The contract under test: for members sharing one exact fingerprint, the
stacked group path of :meth:`SchurAssembler.assemble_group` /
``BatchAssembler.assemble_batch(execution="grouped")`` produces the same
Schur complements as the per-member path (allclose at tight tolerance —
BLAS association order differs inside the batched solves), charges identical
FLOPs and memory traffic, and shrinks kernel launches by the group size.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    GROUPED_AUTO_THRESHOLD,
    BatchAssembler,
    BatchItem,
    items_from_decomposition,
)
from repro.core import AssemblyConfig, SchurAssembler, by_count, by_size, default_config
from repro.gpu import A100_40GB, Executor
from repro.runtime import host_worker_count
from repro.sparse import StackedCSC, cholesky, stack_permuted_dense
from repro.sparse.cholesky import CholeskyFactor
from tests.conftest import random_spd

RTOL, ATOL = 1e-9, 1e-10


def make_group(n: int, m: int, g: int, seed: int, density: float = 0.3):
    """Build *g* members sharing exact factor and gluing patterns.

    Pattern sharing is by construction: one reference factor / gluing
    pattern, member values perturbed multiplicatively (never to zero) — the
    same guarantee an equal factor fingerprint gives the engine.
    """
    rng = np.random.default_rng(seed)
    base = cholesky(random_spd(n, density=min(1.0, 8.0 / n), seed=seed), ordering="natural")
    bt0 = sp.random(n, m, density=density, random_state=seed + 1, format="csc")
    bt0.data = 0.5 + rng.random(bt0.nnz)
    factors, bts = [], []
    for _ in range(g):
        l = base.l.copy()
        l.data = l.data * (1.0 + 0.2 * rng.random(l.nnz))
        factors.append(
            CholeskyFactor(l=l, perm=base.perm, flops=base.flops, engine=base.engine)
        )
        bt = bt0.copy()
        bt.data = bt.data * (1.0 + 0.2 * rng.random(bt.nnz))
        bts.append(bt)
    return factors, bts


VARIANTS = [
    (trsm, syrk)
    for trsm in ("orig", "rhs_split", "factor_split")
    for syrk in ("orig", "input_split", "output_split")
]


# ---------------------------------------------------------------------------
# property: grouped == per-member across the whole variant space
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    g=st.integers(min_value=1, max_value=4),
    n=st.integers(min_value=4, max_value=32),
    m=st.integers(min_value=0, max_value=10),
    seed=st.integers(min_value=0, max_value=10_000),
    variant=st.sampled_from(VARIANTS),
    storage=st.sampled_from(["sparse", "dense"]),
    prune=st.booleans(),
    blocks=st.sampled_from([by_size(5), by_size(64), by_count(3)]),
)
def test_property_grouped_matches_per_member(g, n, m, seed, variant, storage, prune, blocks):
    trsm, syrk = variant
    cfg = AssemblyConfig(
        trsm_variant=trsm,
        syrk_variant=syrk,
        trsm_blocks=blocks,
        syrk_blocks=blocks,
        factor_storage=storage,
        prune=prune,
    )
    factors, bts = make_group(n, m, g, seed)
    asm = SchurAssembler(config=cfg)
    ex_pm, ex_gr = Executor(A100_40GB), Executor(A100_40GB)
    refs = [asm.assemble(f, bt, executor=ex_pm) for f, bt in zip(factors, bts)]
    res = asm.assemble_group(factors, bts, executor=ex_gr)
    assert len(res) == g
    for r, q in zip(refs, res):
        scale = max(1.0, float(np.abs(r.f).max(initial=0.0)))
        assert np.allclose(q.f, r.f, rtol=RTOL, atol=ATOL * scale)
        assert np.array_equal(q.col_perm, r.col_perm)
    # KernelCost totals: identical FLOPs and bytes, launches shrink by >= g.
    pm, gr = ex_pm.ledger.total, ex_gr.ledger.total
    assert gr.flops == pytest.approx(pm.flops, rel=1e-12)
    assert gr.bytes_moved == pytest.approx(pm.bytes_moved, rel=1e-12)
    assert gr.launches * g <= pm.launches
    # Fewer launches, same roofline terms: simulated time can only improve.
    assert ex_gr.elapsed <= ex_pm.elapsed * (1.0 + 1e-9)


# ---------------------------------------------------------------------------
# assemble_group contract
# ---------------------------------------------------------------------------


def test_assemble_group_rejects_mismatched_patterns():
    factors, bts = make_group(12, 5, 2, seed=1)
    other_factor = cholesky(random_spd(12, density=0.9, seed=99), ordering="natural")
    with pytest.raises(ValueError, match="pattern differs"):
        SchurAssembler().assemble_group([factors[0], other_factor], bts)


def test_assemble_group_rejects_bad_lengths():
    factors, bts = make_group(10, 4, 2, seed=2)
    with pytest.raises(ValueError, match="same length"):
        SchurAssembler().assemble_group(factors, bts[:1])
    with pytest.raises(ValueError, match="at least one"):
        SchurAssembler().assemble_group([], [])


def test_assemble_group_keep_y_matches_per_member():
    factors, bts = make_group(14, 6, 3, seed=3)
    asm = SchurAssembler(config=default_config("gpu", 2))
    refs = [asm.assemble(f, bt, keep_y=True) for f, bt in zip(factors, bts)]
    res = asm.assemble_group(factors, bts, keep_y=True)
    for r, q in zip(refs, res):
        assert np.allclose(q.y, r.y, rtol=RTOL, atol=ATOL)


def test_assemble_group_breakdown_shares_sum_to_group_total():
    factors, bts = make_group(16, 5, 4, seed=4)
    ex = Executor(A100_40GB)
    res = SchurAssembler(config=default_config("gpu", 2)).assemble_group(
        factors, bts, executor=ex
    )
    kernel_total = sum(sum(r.breakdown[k] for k in ("permute", "trsm", "syrk")) for r in res)
    assert kernel_total == pytest.approx(ex.elapsed)
    # Transfer is priced off-executor (PCIe model), equal share per member.
    assert len({r.breakdown["transfer"] for r in res}) == 1


# ---------------------------------------------------------------------------
# engine execution modes
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def floating_4x4():
    from repro.dd import decompose
    from repro.fem import heat_transfer_2d

    problem = heat_transfer_2d(16, dirichlet=())
    decomposition = decompose(problem, grid=(4, 4))
    return items_from_decomposition(decomposition)


def test_engine_grouped_matches_per_member(floating_4x4):
    cfg = default_config("gpu", 2)
    pm = BatchAssembler(config=cfg).assemble_batch(floating_4x4, execution="per-member")
    gr = BatchAssembler(config=cfg).assemble_batch(floating_4x4, execution="grouped")
    assert gr.stats.n_grouped == gr.stats.n_subdomains
    assert gr.stats.execution == "grouped" and pm.stats.execution == "per-member"
    for a, b in zip(pm.results, gr.results):
        scale = max(1.0, float(np.abs(a.f).max(initial=0.0)))
        assert np.allclose(b.f, a.f, rtol=RTOL, atol=ATOL * scale)
    # Launches shrink per group by exactly the group size.
    assert set(gr.stats.group_launches) == set(pm.stats.group_launches)
    for key, members in pm.groups.items():
        assert gr.stats.group_launches[key] * len(members) <= pm.stats.group_launches[key]
    assert gr.stats.kernel_launches < pm.stats.kernel_launches
    assert set(gr.stats.group_execute_seconds) == set(gr.stats.group_launches)


def test_engine_parallel_workers_match_serial(floating_4x4):
    cfg = default_config("gpu", 2)
    serial = BatchAssembler(config=cfg).assemble_batch(
        floating_4x4, execution="grouped", n_workers=1
    )
    parallel = BatchAssembler(config=cfg).assemble_batch(
        floating_4x4, execution="grouped", n_workers=4
    )
    for a, b in zip(serial.results, parallel.results):
        assert np.array_equal(a.f, b.f)  # same kernels, same order: bitwise
    assert parallel.stats.kernel_launches == serial.stats.kernel_launches


def test_engine_auto_threshold():
    """auto batches only groups of >= GROUPED_AUTO_THRESHOLD members; with
    canonical sharing disabled, the 4x4 floating grid keeps its exact
    translate-classes — a 4-member interior group and smaller ones (the
    canonical classes would all clear the threshold)."""
    from repro.dd import decompose
    from repro.fem import heat_transfer_2d

    problem = heat_transfer_2d(16, dirichlet=())
    items = items_from_decomposition(decompose(problem, grid=(4, 4)), canonicalize=False)
    cfg = default_config("gpu", 2)
    auto = BatchAssembler(config=cfg).assemble_batch(items, execution="auto")
    sizes = sorted(len(v) for v in auto.groups.values())
    expected = sum(s for s in sizes if s >= GROUPED_AUTO_THRESHOLD)
    assert auto.stats.n_grouped == expected
    assert 0 < auto.stats.n_grouped < auto.stats.n_subdomains
    assert all(r is not None for r in auto.results)


def test_engine_auto_skips_large_sparse_groups():
    """auto keeps big sparse-storage groups per-member: the batched kernels
    are dense, so a large sparse factor's SuperLU path is the faster host
    path (the grouped win targets many *small* subdomains)."""
    from repro.batch import GROUPED_AUTO_MAX_SPARSE_ORDER

    n = GROUPED_AUTO_MAX_SPARSE_ORDER + 10
    factors, bts = make_group(n, 8, GROUPED_AUTO_THRESHOLD, seed=11, density=0.1)
    items = [BatchItem(f, bt) for f, bt in zip(factors, bts)]
    sparse_cfg = default_config("gpu", 2).with_overrides(factor_storage="sparse")
    dense_cfg = sparse_cfg.with_overrides(factor_storage="dense")
    auto_sparse = BatchAssembler(config=sparse_cfg).assemble_batch(items, execution="auto")
    assert auto_sparse.stats.n_grouped == 0  # order cap applies
    auto_dense = BatchAssembler(config=dense_cfg).assemble_batch(items, execution="auto")
    assert auto_dense.stats.n_grouped == len(items)  # dense storage: no cap


def test_engine_grouped_absorbs_into_shared_executor():
    factors, bts = make_group(12, 4, 3, seed=6)
    items = [BatchItem(f, bt) for f, bt in zip(factors, bts)]
    engine = BatchAssembler(config=default_config("gpu", 2))
    ex = Executor(A100_40GB)
    batch = engine.assemble_batch(items, execution="grouped", executor=ex)
    assert ex.ledger.total.launches == batch.stats.kernel_launches
    assert ex.elapsed > 0


def test_engine_rejects_unknown_execution():
    engine = BatchAssembler()
    with pytest.raises(ValueError, match="execution mode"):
        engine.assemble_batch([], execution="warp")


def test_engine_plan_only_has_no_execution_counters(floating_4x4):
    batch = BatchAssembler(config=default_config("gpu", 2)).assemble_batch(
        floating_4x4, execute=False, execution="grouped"
    )
    assert batch.stats.kernel_launches == 0
    assert batch.stats.n_grouped == 0
    assert batch.stats.group_launches == {}


def test_stats_merge_covers_execution_counters():
    from repro.batch import BatchStats

    a = BatchStats(
        execution="grouped",
        n_grouped=2,
        kernel_launches=10,
        execute_seconds=1.0,
        group_execute_seconds={"x": 1.0},
        group_launches={"x": 10},
    )
    b = BatchStats(
        execution="per-member",
        n_grouped=0,
        kernel_launches=4,
        execute_seconds=0.5,
        group_execute_seconds={"x": 0.5, "y": 2.0},
        group_launches={"y": 4},
    )
    merged = a.merge(b)
    assert merged.execution == "mixed"
    assert merged.kernel_launches == 14
    assert merged.group_execute_seconds == {"x": 1.5, "y": 2.0}
    assert merged.group_launches == {"x": 10, "y": 4}
    assert "batched" in a.summary()


# ---------------------------------------------------------------------------
# stacked container + worker plumbing
# ---------------------------------------------------------------------------


def test_stacked_csc_roundtrip_and_blocks():
    factors, _ = make_group(15, 3, 3, seed=7)
    stacked = StackedCSC.from_matrices([f.l for f in factors])
    assert stacked.group == 3 and stacked.nnz == factors[0].l.nnz
    for g, f in enumerate(factors):
        assert np.array_equal(stacked.toarray()[g], f.l.toarray())
        assert np.array_equal(
            stacked.block(4, 12, 0, 7).toarray()[g], f.l.toarray()[4:12, 0:7]
        )
        assert (stacked.member(g) != f.l).nnz == 0
    blk = stacked.block(5, 15, 0, 5)
    packed = blk.toarray(rows=blk.nonempty_rows())
    dense = factors[1].l.toarray()[5:15, 0:5]
    assert np.array_equal(packed[1], dense[blk.nonempty_rows()])


def test_stacked_csc_rejects_shape_and_pattern_mismatch():
    a = sp.random(8, 8, density=0.4, random_state=0, format="csc")
    with pytest.raises(ValueError, match="shape differs"):
        StackedCSC.from_matrices([a, sp.csc_matrix((7, 8))])
    b = a.copy()
    b.data = b.data * 2.0
    StackedCSC.from_matrices([a, b])  # same pattern: fine
    c = sp.random(8, 8, density=0.4, random_state=1, format="csc")
    with pytest.raises(ValueError, match="pattern differs"):
        StackedCSC.from_matrices([a, c])


def test_stack_permuted_dense_matches_per_member():
    rng = np.random.default_rng(0)
    base = sp.random(9, 6, density=0.5, random_state=2, format="csc")
    mats = []
    for _ in range(3):
        m = base.copy()
        m.data = rng.random(m.nnz) + 0.5
        mats.append(m)
    perm = rng.permutation(6)
    x = stack_permuted_dense(mats, perm)
    for g, m in enumerate(mats):
        assert np.array_equal(x[g], m.toarray()[:, perm])


def test_host_worker_count():
    assert host_worker_count(1) == 1
    assert host_worker_count(3, n_tasks=2) == 2
    assert host_worker_count(2, n_tasks=0) == 1
    assert host_worker_count(None) >= 1
    assert host_worker_count(None, n_tasks=1) == 1
    with pytest.raises(ValueError, match="n_workers"):
        host_worker_count(0)


# ---------------------------------------------------------------------------
# graceful degradation: batched-task failure falls back per-member


def test_engine_group_failure_falls_back_per_member(floating_4x4):
    cfg = default_config("gpu", 2)
    ref = BatchAssembler(config=cfg).assemble_batch(
        floating_4x4, execution="per-member"
    )
    engine = BatchAssembler(config=cfg)

    def boom(*args, **kwargs):
        raise RuntimeError("batched kernel exploded")

    engine.assembler.assemble_group = boom
    with pytest.warns(RuntimeWarning, match="falling back to"):
        batch = engine.assemble_batch(floating_4x4, execution="grouped")
    assert batch.stats.n_exec_fallbacks > 0
    assert batch.stats.n_grouped == 0
    assert all(r is not None for r in batch.results)
    for a, b in zip(ref.results, batch.results):
        assert np.array_equal(a.f, b.f)  # exact per-member path: bitwise
    assert "re-executed per-member" in batch.stats.summary()


def test_engine_partial_group_failure_only_falls_back_failed_group(floating_4x4):
    """Only the group whose kernels raise degrades; the others stay batched."""
    cfg = default_config("gpu", 2)
    engine = BatchAssembler(config=cfg)
    original = engine.assembler.assemble_group
    calls = {"n": 0}

    def flaky(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("first group exploded")
        return original(*args, **kwargs)

    engine.assembler.assemble_group = flaky
    with pytest.warns(RuntimeWarning, match="falling back to"):
        batch = engine.assemble_batch(
            floating_4x4, execution="grouped", n_workers=1
        )
    assert batch.stats.n_exec_fallbacks == 1
    assert batch.stats.n_grouped > 0  # the surviving groups still batched
    assert all(r is not None for r in batch.results)
    ref = BatchAssembler(config=cfg).assemble_batch(
        floating_4x4, execution="per-member"
    )
    for a, b in zip(ref.results, batch.results):
        scale = max(1.0, float(np.abs(a.f).max(initial=0.0)))
        assert np.allclose(b.f, a.f, rtol=RTOL, atol=ATOL * scale)


def _feti_operator(dirichlet=(), cells=16, grid=(4, 4), approach="impl_mkl"):
    from repro.dd import decompose
    from repro.fem import heat_transfer_2d
    from repro.feti.solver import FetiSolver

    problem = heat_transfer_2d(cells, dirichlet=dirichlet)
    solver = FetiSolver(decompose(problem, grid=grid), approach=approach)
    solver.preprocess()
    return solver


@pytest.mark.parametrize("signature", ["exact", "near"])
def test_grouped_dual_operator_matches_per_subdomain(signature):
    """Solve-side contract: the grouped dual-operator panel application is
    allclose to the per-subdomain comparator, charges identical KernelCost
    FLOPs and bytes, and launches once per group per kernel stage instead
    of once per subdomain — including the padded union tier that near
    signatures produce."""
    from repro.feti.operator import GroupedDualOperator
    from repro.gpu import A100_40GB
    from repro.gpu.runtime import Executor as GpuExecutor

    solver = _feti_operator()
    op = solver.operator
    ex_gr, ex_pm = GpuExecutor(A100_40GB), GpuExecutor(A100_40GB)
    gop = GroupedDualOperator(op, executor=ex_gr, signature=signature)
    assert 1 <= gop.n_groups < op.decomposition.n_subdomains
    if signature == "near":
        assert any(g.tier == "union" for g in gop.groups)

    rng = np.random.default_rng(0)
    lam = rng.standard_normal((op.n_multipliers, 3))
    got = gop.apply_panel(lam)
    ref = gop.apply_panel_sequential(lam, ex_pm)
    exact = np.stack([op.apply(lam[:, j]) for j in range(3)], axis=1)
    scale = max(1.0, float(np.abs(exact).max()))
    assert np.allclose(got, exact, rtol=RTOL, atol=ATOL * scale)
    assert np.allclose(ref, exact, rtol=RTOL, atol=ATOL * scale)

    gr, pm = ex_gr.ledger.total, ex_pm.ledger.total
    if signature == "exact":
        # exact tier: identical per-member kernels, so identical pricing
        assert gr.flops == pytest.approx(pm.flops, rel=1e-12)
        assert gr.bytes_moved == pytest.approx(pm.bytes_moved, rel=1e-12)
    else:
        # union tier pads: never cheaper than the exact per-member work
        assert gr.flops >= pm.flops * (1.0 - 1e-12)
        assert gr.bytes_moved >= pm.bytes_moved * (1.0 - 1e-12)
    assert gr.launches == gop.launches_per_application
    assert pm.launches == gop.sequential_launches_per_application
    assert gop.launches_per_application == 6 * gop.n_groups
    assert (
        gop.sequential_launches_per_application
        == 6 * op.decomposition.n_subdomains
    )


def test_grouped_dual_operator_vector_apply_and_recover():
    from repro.feti.operator import GroupedDualOperator

    solver = _feti_operator(dirichlet=("left",), cells=12, grid=(3, 3))
    op = solver.operator
    gop = GroupedDualOperator(op)
    rng = np.random.default_rng(1)
    lam = rng.standard_normal(op.n_multipliers)
    assert np.allclose(gop.apply(lam), op.apply(lam), rtol=RTOL, atol=ATOL)
    assert gop.n_multipliers == op.n_multipliers
    # recovery delegates to the base operator
    alpha = np.zeros(op.kernel_dim)
    a = gop.recover_solution(lam, alpha)
    b = op.recover_solution(lam, alpha)
    for ua, ub in zip(a, b):
        assert np.array_equal(ua, ub)


def test_stacked_preconditioner_matches_lumped():
    """The stacked (grouped) lumped preconditioner is allclose to the
    per-subdomain LumpedPreconditioner on vectors and panels, and launches
    once per pattern group per kernel stage."""
    from repro.feti.preconditioner import LumpedPreconditioner, StackedPreconditioner

    solver = _feti_operator()
    dec = solver.decomposition
    lump = LumpedPreconditioner(dec)
    stacked = StackedPreconditioner(dec)
    assert 1 <= stacked.n_groups < dec.n_subdomains
    assert stacked.launches_per_application == 5 * stacked.n_groups
    rng = np.random.default_rng(2)
    w = rng.standard_normal((dec.n_multipliers, 3))
    ref = np.stack([lump.apply(w[:, j]) for j in range(3)], axis=1)
    scale = max(1.0, float(np.abs(ref).max()))
    assert np.allclose(stacked.apply(w), ref, rtol=RTOL, atol=ATOL * scale)
    assert np.allclose(
        stacked.apply(w[:, 0]), ref[:, 0], rtol=RTOL, atol=ATOL * scale
    )


def test_grouped_dual_operator_union_fill_cap_falls_back_exact():
    """A sub-1 fill cap disables padding: every near class executes as
    exact-pattern subgroups and the results stay correct."""
    from repro.feti.operator import GroupedDualOperator

    solver = _feti_operator()
    op = solver.operator
    capped = GroupedDualOperator(op, signature="near", union_fill_cap=0.5)
    assert all(g.tier == "exact" for g in capped.groups)
    rng = np.random.default_rng(3)
    lam = rng.standard_normal((op.n_multipliers, 2))
    exact = np.stack([op.apply(lam[:, j]) for j in range(2)], axis=1)
    scale = max(1.0, float(np.abs(exact).max()))
    assert np.allclose(capped.apply_panel(lam), exact, rtol=RTOL, atol=ATOL * scale)


def test_engine_union_failure_falls_back_per_member():
    from repro.dd import decompose
    from repro.fem import heat_problem
    from repro.part import make_mesh

    problem = heat_problem(make_mesh("jittered", 12, seed=1), dirichlet=())
    items = items_from_decomposition(decompose(
        problem, n_subdomains=6, partitioner="rcb", seed=1
    ))
    cfg = default_config("gpu", 2)
    engine = BatchAssembler(config=cfg, signature_mode="near")

    def boom(*args, **kwargs):
        raise RuntimeError("union kernel exploded")

    engine.assembler.assemble_union = boom
    with pytest.warns(RuntimeWarning, match="falling back to"):
        batch = engine.assemble_batch(items, execution="union")
    assert batch.stats.n_exec_fallbacks > 0
    assert all(r is not None for r in batch.results)
    ref = BatchAssembler(config=cfg, signature_mode="near").assemble_batch(
        items, execution="per-member"
    )
    for a, b in zip(ref.results, batch.results):
        scale = max(1.0, float(np.abs(a.f).max(initial=0.0)))
        assert np.allclose(b.f, a.f, rtol=RTOL, atol=ATOL * scale)
