"""Canonical relabeling: invertibility under every rigid symmetry, and
exact artifact sharing across mirror classes.

The contract under test (see ``docs/batching.md``): for each of the 8 axis
perm/flip symmetries of the square, ``CanonicalRelabeling`` composed with
its inverse is the identity on DOFs, matrices and gluing columns; members
of one mirror class relabel onto bit-equal patterns, share one executed
batch group, and their un-relabeled Schur complements match per-member
assembly at tight tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    BatchAssembler,
    factor_fingerprint,
    subdomain_fingerprint,
)
from repro.batch.engine import items_from_decomposition
from repro.core import SchurAssembler, default_config
from repro.dd import decompose
from repro.fem import heat_transfer_2d
from repro.feti.operator import factorize_subdomain
from repro.feti.planner import plan_population
from repro.sparse import (
    CanonicalRelabeling,
    canonical_relabeling,
    orientation_transforms,
    quantize_pattern,
)
from tests.conftest import grid_coords, laplacian_2d

RTOL, ATOL = 1e-9, 1e-10

#: Dyadic offsets keep translated coordinates exact in floating point.
OFFSETS = st.integers(min_value=-64, max_value=64)

SYMMETRIES_2D = orientation_transforms(2)


def _labelled_problem(nx: int = 5, ny: int = 3, seed: int = 0):
    """Grid coordinates, a geometric stiffness and a one-entry-per-column
    gluing matrix whose multiplicities break the point-set symmetry enough
    to make the relabeling non-trivial.

    The 5x3 extents (4 and 2) divide the canonical quantum count exactly,
    so the quantized lattice is bit-symmetric under every flip — the
    regime where orientation canonicalization is exact (see
    :mod:`repro.sparse.canonical`); non-integral extents split classes
    conservatively instead.
    """
    coords = grid_coords(nx, ny).astype(np.float64)
    n = coords.shape[0]
    k = laplacian_2d(nx, ny).tocsr()
    rng = np.random.default_rng(seed)
    glued = rng.permutation(n)[: n // 2]
    cols = []
    for d in glued:
        col = np.zeros(n)
        col[d] = 1.0 if rng.random() < 0.5 else -1.0
        cols.append(col)
    bt = sp.csc_matrix(np.column_stack(cols)) if cols else sp.csc_matrix((n, 0))
    return coords, k, bt


@pytest.mark.parametrize("perm,signs", SYMMETRIES_2D)
@settings(max_examples=12, deadline=None)
@given(dx=OFFSETS, dy=OFFSETS)
def test_property_relabeling_roundtrip_all_symmetries(perm, signs, dx, dy):
    """apply ∘ unapply is the identity on DOFs, matrices, gluing columns and
    Schur complements, for coordinates under every axis perm/flip."""
    coords, k, bt = _labelled_problem()
    moved = coords[:, perm] * np.asarray(signs, dtype=np.float64) + np.array(
        [dx, dy], dtype=np.float64
    )
    rel = canonical_relabeling(moved, k=k, bt=bt)
    assert isinstance(rel, CanonicalRelabeling)
    n, m = rel.n_dofs, rel.n_cols
    assert (n, m) == bt.shape

    # DOF vector roundtrip.
    v = np.arange(n, dtype=np.float64)
    assert np.array_equal(rel.unapply_vector(rel.apply_vector(v)), v)
    assert np.array_equal(rel.dof_perm[rel.dof_inverse()], np.arange(n))
    assert np.array_equal(rel.col_perm[rel.col_inverse()], np.arange(m))

    # Matrix roundtrip (no quantization so values survive bit-for-bit).
    k_c = rel.apply_matrix(k, quantize=False)
    k_back = k_c.tocsr()[rel.dof_inverse()][:, rel.dof_inverse()]
    assert (k_back != k).nnz == 0

    # Gluing roundtrip on rows *and* columns.
    bt_c = rel.apply_bt(bt)
    bt_back = bt_c.tocsr()[rel.dof_inverse()].tocsc()[:, rel.col_inverse()]
    assert (bt_back != bt).nnz == 0

    # SC roundtrip: unapply_sc inverts the column relabeling exactly.
    f = np.arange(m * m, dtype=np.float64).reshape(m, m)
    f = f + f.T
    f_can = f[np.ix_(rel.col_perm, rel.col_perm)]
    assert np.array_equal(rel.unapply_sc(f_can), f)


@settings(max_examples=10, deadline=None)
@given(
    transform=st.sampled_from(SYMMETRIES_2D),
    dx=OFFSETS,
    dy=OFFSETS,
)
def test_property_signature_invariant_under_symmetries(transform, dx, dy):
    """The relabeling signature is one orientation-canonical class key:
    invariant under every rigid symmetry of the labelled point set."""
    perm, signs = transform
    coords, _, bt = _labelled_problem()
    base = canonical_relabeling(coords, bt=bt)
    moved = coords[:, perm] * np.asarray(signs, dtype=np.float64) + np.array(
        [dx, dy], dtype=np.float64
    )
    rel = canonical_relabeling(moved, bt=bt)
    assert rel.signature == base.signature
    # The relabeled gluing patterns coincide bit-for-bit.
    a, b = base.apply_bt(bt).tocsc(), rel.apply_bt(bt).tocsc()
    a.sort_indices(), b.sort_indices()
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)


def test_quantize_pattern_drops_only_below_tolerance():
    a = sp.csr_matrix(np.array([[2.0, 1e-17], [1e-17, 1.0]]))
    q = quantize_pattern(a)
    assert q.nnz == 2 and np.array_equal(q.toarray(), np.diag([2.0, 1.0]))
    exact = quantize_pattern(a, value_tolerance=0.0)
    assert exact.nnz == 4  # zero tolerance keeps the tiny entries
    assert quantize_pattern(sp.csr_matrix((3, 3))).nnz == 0
    with pytest.raises(ValueError, match="sparse"):
        quantize_pattern(np.eye(2))


def test_relabeling_validates_shapes():
    coords, k, bt = _labelled_problem()
    rel = canonical_relabeling(coords, k=k, bt=bt)
    with pytest.raises(ValueError, match="shape mismatch"):
        rel.apply_matrix(sp.eye(3, format="csr"))
    with pytest.raises(ValueError, match="shape mismatch"):
        rel.apply_bt(sp.csc_matrix((3, 1)))
    with pytest.raises(ValueError, match="n_cols"):
        rel.unapply_sc(np.zeros((3, 3)))
    with pytest.raises(ValueError, match="one row per DOF"):
        canonical_relabeling(coords[:-1], bt=bt)


# ---------------------------------------------------------------------------
# mirror classes on a real decomposition: shared artifacts, allclose SCs
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def floating_3x3():
    problem = heat_transfer_2d(12, dirichlet=())
    return decompose(problem, grid=(3, 3))


def test_mirror_members_share_canonical_fingerprints(floating_3x3):
    dec = floating_3x3
    subs = dec.subdomains
    rels = [canonical_relabeling(s.coords, k=s.k, bt=s.bt) for s in subs]
    # Corner subdomains 0/2/6/8 form one canonical class, edges another.
    corner_sigs = {rels[i].signature for i in (0, 2, 6, 8)}
    edge_sigs = {rels[i].signature for i in (1, 3, 5, 7)}
    assert len(corner_sigs) == 1 and len(edge_sigs) == 1
    assert corner_sigs != edge_sigs != {rels[4].signature}

    # subdomain_fingerprint emits the same canonical-class key...
    corner_keys = {
        subdomain_fingerprint(subs[i].k, subs[i].bt, relabeling=rels[i]).key
        for i in (0, 2, 6, 8)
    }
    assert len(corner_keys) == 1
    # ...where the raw key tells the corners apart.
    raw_keys = {subdomain_fingerprint(subs[i].k, subs[i].bt).key for i in (0, 2, 6, 8)}
    assert len(raw_keys) == 4

    # Canonical-frame factors of one class share pattern; factor_fingerprint
    # with the relabeling collides, without it stays apart.
    factors = [
        factorize_subdomain(subs[i], relabeling=rels[i]) for i in (0, 2, 6, 8)
    ]
    canon = {
        factor_fingerprint(f, subs[i].bt, relabeling=rels[i]).key
        for f, i in zip(factors, (0, 2, 6, 8))
    }
    exact = {
        factor_fingerprint(f, subs[i].bt).key for f, i in zip(factors, (0, 2, 6, 8))
    }
    assert len(canon) == 1 and len(exact) == 4


def test_canonical_factor_solves_the_subdomain(floating_3x3):
    """The canonical-frame factor (perm composed back to original DOFs) is a
    genuine factorization of the canonically regularized subdomain matrix:
    K x = b residuals stay small on the regularized operator's range."""
    sub = floating_3x3.subdomains[0]
    rel = canonical_relabeling(sub.coords, k=sub.k, bt=sub.bt)
    factor = factorize_subdomain(sub, relabeling=rel)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(sub.n_dofs)
    x = factor.solve(b)
    # factor.solve applies K_reg^{-1}; verify against the explicitly
    # reconstructed regularized matrix in the canonical frame.
    from repro.sparse import choose_fixing_dofs, regularize

    k_c = rel.apply_matrix(sub.k)
    fixing = choose_fixing_dofs(k_c, sub.kernel_dim, coords=rel.coords())
    k_reg_c = regularize(k_c, fixing)
    k_reg = k_reg_c.tocsr()[rel.dof_inverse()][:, rel.dof_inverse()]
    assert np.allclose(k_reg @ x, b, atol=1e-8 * max(1.0, np.abs(b).max()))


def test_mirror_classes_execute_as_shared_groups(floating_3x3):
    """The ISSUE acceptance property at 3x3 scale: mirror-class members run
    through one stacked group and their un-relabeled SCs match per-member
    assembly."""
    items = items_from_decomposition(floating_3x3)
    cfg = default_config("gpu", 2)
    batch = BatchAssembler(config=cfg).assemble_batch(items, execution="grouped")
    assert batch.stats.n_groups == 3 and batch.stats.n_exact_groups == 9
    assert batch.stats.n_grouped == 9
    assert len(batch.stats.group_launches) == 3
    ref = SchurAssembler(config=cfg)
    for it, res in zip(items, batch.results):
        expect = ref.assemble(it.factor, it.bt).f
        scale = max(1.0, float(np.abs(expect).max(initial=0.0)))
        assert np.allclose(res.f, expect, rtol=RTOL, atol=ATOL * scale)


def test_mirror_classes_share_in_3d():
    """Kuhn-tetrahedra adjacency is not symmetric under all 48 transforms,
    but the quantized-K-aware minimizer still collapses the 8 octants of a
    floating 2x2x2 decomposition into one canonical group — with SCs
    matching per-member assembly."""
    from repro.fem import heat_transfer_3d

    problem = heat_transfer_3d(6, dirichlet=())
    dec = decompose(problem, grid=(2, 2, 2))
    items = items_from_decomposition(dec)
    cfg = default_config("gpu", 3)
    batch = BatchAssembler(config=cfg).assemble_batch(items, execution="grouped")
    assert batch.stats.n_exact_groups == 8
    assert batch.stats.n_groups == 1
    assert batch.stats.n_grouped == 8
    ref = SchurAssembler(config=cfg)
    for it, res in zip(items, batch.results):
        expect = ref.assemble(it.factor, it.bt).f
        scale = max(1.0, float(np.abs(expect).max(initial=0.0)))
        assert np.allclose(res.f, expect, rtol=RTOL, atol=ATOL * scale)


def test_plan_population_accepts_relabelings(floating_3x3):
    items = items_from_decomposition(floating_3x3)
    members = [(it.factor, it.bt) for it in items]
    rels = [it.relabeling for it in items]
    pop = plan_population(members, dim=2, expected_iterations=30, relabelings=rels)
    assert pop.n_groups == 3
    geo = plan_population(
        members,
        dim=2,
        expected_iterations=30,
        coords=[it.coords for it in items],
    )
    assert [pop.chosen_for(i) for i in range(9)] == [
        geo.chosen_for(i) for i in range(9)
    ]
    with pytest.raises(ValueError, match="one entry"):
        plan_population(members, dim=2, expected_iterations=30, relabelings=rels[:-1])


def test_items_from_decomposition_canonicalize_flag(floating_3x3):
    canonical = items_from_decomposition(floating_3x3)
    plain = items_from_decomposition(floating_3x3, canonicalize=False)
    assert all(it.relabeling is not None for it in canonical)
    assert all(it.relabeling is None for it in plain)
    batch = BatchAssembler(config=default_config("gpu", 2)).assemble_batch(
        plain, execute=False
    )
    assert batch.stats.n_groups == batch.stats.n_exact_groups == 9
    assert batch.stats.mirrors_shared == 0
