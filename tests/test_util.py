"""Tests for validation helpers, FLOP formulas and table formatting."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import (
    Table,
    check_dense_matrix,
    check_lower_triangular,
    check_permutation,
    check_sparse_square,
    check_square,
    format_series,
    format_si,
    gemm_flops,
    require,
    spmm_flops,
    stepped_syrk_flops,
    stepped_trsm_dense_flops,
    syrk_flops,
    trsm_dense_flops,
    trsm_sparse_flops,
)


def test_require():
    require(True, "fine")
    with pytest.raises(ValueError, match="boom"):
        require(False, "boom")


def test_check_square():
    assert check_square(np.eye(3)) == 3
    with pytest.raises(ValueError):
        check_square(np.ones((2, 3)))
    with pytest.raises(ValueError):
        check_square(np.ones(4))


def test_check_sparse_square():
    assert check_sparse_square(sp.eye(4)) == 4
    with pytest.raises(ValueError):
        check_sparse_square(np.eye(4))
    with pytest.raises(ValueError):
        check_sparse_square(sp.csr_matrix((2, 3)))


def test_check_dense_matrix():
    assert check_dense_matrix(np.ones((2, 5))) == (2, 5)
    with pytest.raises(ValueError):
        check_dense_matrix([[1.0]])
    with pytest.raises(ValueError):
        check_dense_matrix(np.ones(3))


def test_check_lower_triangular_dense():
    check_lower_triangular(np.tril(np.ones((4, 4))))
    with pytest.raises(ValueError):
        check_lower_triangular(np.ones((4, 4)))


def test_check_lower_triangular_sparse_allows_stored_zero_upper():
    a = sp.csc_matrix(np.array([[1.0, 0.0], [2.0, 3.0]]))
    a.data = np.asarray(a.data)
    check_lower_triangular(a)
    b = sp.lil_matrix((2, 2))
    b[0, 1] = 0.0  # explicit stored zero above diagonal is fine
    b[0, 0] = 1.0
    b[1, 1] = 1.0
    check_lower_triangular(sp.csc_matrix(b))


def test_check_permutation():
    p = check_permutation(np.array([2, 0, 1]), 3)
    assert p.dtype == np.intp
    with pytest.raises(ValueError):
        check_permutation(np.array([0, 0, 1]), 3)
    with pytest.raises(ValueError):
        check_permutation(np.array([0, 1]), 3)


def test_flop_formulas_basic_values():
    assert trsm_dense_flops(10, 3) == 300
    assert trsm_sparse_flops(50, 4) == 400
    assert syrk_flops(4, 10) == 10 * 4 * 5
    assert gemm_flops(2, 3, 4) == 48
    assert spmm_flops(100, 5) == 1000


def test_stepped_trsm_flops_extremes():
    n = 100
    # All pivots at zero -> full dense cost.
    full = stepped_trsm_dense_flops(np.zeros(10), n)
    assert full == 10 * n * n
    # Perfectly triangular pivots -> roughly a third of dense cost.
    pivots = np.linspace(0, n, 10, endpoint=False)
    tri = stepped_trsm_dense_flops(pivots, n)
    assert 0.25 * full < tri < 0.45 * full


def test_stepped_syrk_flops_bounds():
    n_rows, m = 200, 40
    full = stepped_syrk_flops(np.zeros(m), n_rows)
    assert full == pytest.approx(syrk_flops(m, n_rows), rel=0.05)
    tri = stepped_syrk_flops(np.linspace(0, n_rows, m, endpoint=False), n_rows)
    assert tri < 0.75 * full


def test_format_si():
    assert format_si(1.5e9) == "1.5G"
    assert format_si(2_000) == "2k"
    assert format_si(0.001) == "1m"
    assert format_si(0) == "0"
    assert format_si(-3e6) == "-3M"
    assert format_si(float("nan")) == "nan"


def test_table_rendering():
    t = Table(["a", "b"], title="demo")
    t.add_row([1, 2.5])
    t.add_row(["x", 1e-8])
    out = t.render()
    assert "demo" in out
    assert "a" in out and "b" in out
    assert len(out.splitlines()) == 5


def test_table_rejects_bad_row():
    t = Table(["a"])
    with pytest.raises(ValueError):
        t.add_row([1, 2])


def test_format_series_handles_short_series():
    out = format_series("n", [1, 2, 3], {"t": [0.1, 0.2]})
    assert "nan" in out


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=1000),
    m=st.integers(min_value=1, max_value=1000),
)
def test_property_stepped_trsm_never_exceeds_dense(n, m):
    rng = np.random.default_rng(n * 1000 + m)
    pivots = np.sort(rng.integers(0, n, size=m))
    assert stepped_trsm_dense_flops(pivots, n) <= trsm_dense_flops(n, m)


@settings(max_examples=30, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=500),
    m=st.integers(min_value=1, max_value=100),
)
def test_property_stepped_syrk_never_exceeds_dense(k, m):
    rng = np.random.default_rng(k * 77 + m)
    pivots = np.sort(rng.integers(0, k, size=m))
    assert stepped_syrk_flops(pivots, k) <= syrk_flops(m, k) * 1.001
