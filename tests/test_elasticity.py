"""Tests for the elasticity substrate and its FETI workload integration."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import make_elasticity_workload
from repro.core import SchurAssembler, default_config
from repro.fem import (
    assemble_body_force,
    assemble_elasticity,
    boundary_dofs,
    elastic_moduli,
    eliminate_dirichlet,
    p1_elasticity_stiffness,
    rigid_body_modes,
    unit_cube_mesh,
    unit_square_mesh,
)
from repro.sparse import (
    NotPositiveDefiniteError,
    cholesky,
    choose_fixing_nodes,
    regularize,
    solve_lower,
)


def test_elastic_moduli_shapes_and_spd():
    d2 = elastic_moduli(1.0, 0.3, 2)
    d3 = elastic_moduli(210e9, 0.28, 3)
    assert d2.shape == (3, 3) and d3.shape == (6, 6)
    assert np.all(np.linalg.eigvalsh(d2) > 0)
    assert np.all(np.linalg.eigvalsh(d3) > 0)


def test_elastic_moduli_validates():
    with pytest.raises(ValueError):
        elastic_moduli(-1.0, 0.3, 2)
    with pytest.raises(ValueError):
        elastic_moduli(1.0, 0.5, 2)
    with pytest.raises(ValueError):
        elastic_moduli(1.0, 0.3, 4)


@pytest.mark.parametrize("dim", [2, 3])
def test_local_stiffness_rbm_kernel(dim):
    """Element stiffness must annihilate rigid-body modes exactly."""
    mesh = unit_square_mesh(2) if dim == 2 else unit_cube_mesh(2)
    ke = p1_elasticity_stiffness(mesh.coords, mesh.elements)
    for e in range(0, mesh.n_elements, 3):
        verts = mesh.elements[e]
        modes = rigid_body_modes(mesh.coords[verts])
        local = ke[e]
        assert np.abs(local @ modes).max() < 1e-12
        # Symmetric positive semi-definite.
        assert np.allclose(local, local.T, atol=1e-13)
        assert np.linalg.eigvalsh(local).min() > -1e-12


@pytest.mark.parametrize("dim", [2, 3])
def test_global_stiffness_rbm_kernel(dim):
    mesh = unit_square_mesh(5) if dim == 2 else unit_cube_mesh(3)
    k = assemble_elasticity(mesh)
    r = rigid_body_modes(mesh.coords)
    assert k.shape == (mesh.n_nodes * dim,) * 2
    assert np.abs(k @ r).max() < 1e-10
    assert (abs(k - k.T)).max() < 1e-12
    # Kernel dimension is exactly 3 (2-D) / 6 (3-D): K + R R^T is SPD.
    reg = sp.csr_matrix(k + sp.csr_matrix(r @ r.T))
    assert np.linalg.eigvalsh(reg.toarray()).min() > 1e-10


def test_rigid_body_modes_orthonormal():
    mesh = unit_cube_mesh(2)
    r = rigid_body_modes(mesh.coords)
    assert r.shape == (3 * mesh.n_nodes, 6)
    assert np.allclose(r.T @ r, np.eye(6), atol=1e-12)


def test_rigid_body_modes_validates():
    with pytest.raises(ValueError):
        rigid_body_modes(np.zeros((4, 1)))


def test_clamped_gravity_bends_down():
    mesh = unit_square_mesh(6)
    k = assemble_elasticity(mesh)
    f = assemble_body_force(mesh, np.array([0.0, -1.0]))
    bd = boundary_dofs(mesh, ("left",))
    k_ff, ff, free = eliminate_dirichlet(k, f, bd)
    u = sp.linalg.spsolve(k_ff.tocsc(), ff)
    full = np.zeros(k.shape[0])
    full[free] = u
    uy = full[1::2]
    assert uy.mean() < 0  # sags under gravity
    # Deflection grows towards the free (right) end.
    right = mesh.boundary_groups["right"]
    left = mesh.boundary_groups["left"]
    assert np.abs(uy[right]).mean() > np.abs(uy[left]).mean()


def test_body_force_total():
    mesh = unit_square_mesh(4)
    f = assemble_body_force(mesh, np.array([0.0, -2.0]))
    # Total force = integral of the body force = -2 * area.
    assert np.isclose(f[1::2].sum(), -2.0)
    assert np.isclose(f[0::2].sum(), 0.0)
    with pytest.raises(ValueError):
        assemble_body_force(mesh, np.array([1.0, 2.0, 3.0]))


def test_boundary_dofs():
    mesh = unit_square_mesh(3)
    dofs = boundary_dofs(mesh, ("left",))
    assert dofs.size == 2 * 4  # 4 nodes x 2 components
    assert boundary_dofs(mesh, ()).size == 0
    with pytest.raises(ValueError):
        boundary_dofs(mesh, ("north",))


def test_fixing_nodes_make_elasticity_spd():
    """Component-wise fixing can fail; node-wise fixing must succeed."""
    mesh = unit_square_mesh(5)
    k = assemble_elasticity(mesh)
    fixing = choose_fixing_nodes(mesh.coords, 3, dofs_per_node=2)
    k_reg = regularize(k, fixing)
    factor = cholesky(k_reg, ordering="amd")  # must not raise
    assert factor.n == k.shape[0]
    # Unregularized matrix is singular.
    with pytest.raises(NotPositiveDefiniteError):
        cholesky(sp.csr_matrix(k), ordering="amd")


def test_choose_fixing_nodes_validates():
    coords = np.zeros((5, 2))
    with pytest.raises(ValueError):
        choose_fixing_nodes(coords, 0, 2)
    with pytest.raises(ValueError):
        choose_fixing_nodes(coords, 6, 2)
    with pytest.raises(ValueError):
        choose_fixing_nodes(np.zeros(5), 1, 2)


def test_generalized_inverse_exact_with_kernel_pivoted_fixing():
    """K K_reg^{-1} K == K *exactly* when #fixing DOFs == kernel dim and
    R^T S is invertible (QR-pivoted selection)."""
    from repro.sparse import choose_fixing_dofs_by_kernel

    mesh = unit_square_mesh(3)
    k = assemble_elasticity(mesh)
    r = rigid_body_modes(mesh.coords)
    fixing = choose_fixing_dofs_by_kernel(r)
    assert fixing.size == 3  # exactly the kernel dimension
    factor = cholesky(regularize(k, fixing), ordering="amd")
    kd = k.toarray()
    kplus_k = np.column_stack([factor.solve(kd[:, j]) for j in range(kd.shape[1])])
    assert np.allclose(kd @ kplus_k, kd, atol=1e-9)


def test_generalized_inverse_inexact_when_overfixed():
    """Fixing *more* DOFs than the kernel dimension destroys the exact
    generalized-inverse identity — the algebra behind the fixing-node rule."""
    mesh = unit_square_mesh(3)
    k = assemble_elasticity(mesh)
    fixing = choose_fixing_nodes(mesh.coords, 3, dofs_per_node=2)  # 6 > 3
    factor = cholesky(regularize(k, fixing), ordering="amd")
    kd = k.toarray()
    kplus_k = np.column_stack([factor.solve(kd[:, j]) for j in range(kd.shape[1])])
    assert not np.allclose(kd @ kplus_k, kd, atol=1e-7)


@pytest.mark.parametrize("dim", [2, 3])
def test_elasticity_workload_sc_exact(dim):
    wl = make_elasticity_workload(dim, 900)
    res = SchurAssembler(config=default_config("gpu", dim)).assemble(wl.factor, wl.bt)
    y = solve_lower(wl.factor.l, wl.bt.tocsr()[wl.factor.perm].toarray())
    assert np.allclose(res.f, y.T @ y, atol=1e-8)
    assert wl.n_dofs % dim == 0
    assert wl.n_multipliers % dim == 0


def test_elasticity_workload_cached():
    a = make_elasticity_workload(2, 500)
    b = make_elasticity_workload(2, 500)
    assert a is b


@settings(max_examples=8, deadline=None)
@given(nx=st.integers(2, 6), nu=st.floats(0.0, 0.45))
def test_property_2d_elasticity_kernel(nx, nu):
    mesh = unit_square_mesh(nx)
    k = assemble_elasticity(mesh, e=1.0, nu=nu)
    r = rigid_body_modes(mesh.coords)
    assert np.abs(k @ r).max() < 1e-9
