"""Rotation-invariant signatures, near-match pricing, extent snapping."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.canonical import (
    canonical_frame,
    canonical_relabeling,
    canonical_signature,
    inertia_alignment,
    near_signature,
    rotation_coords,
    rotation_signature,
)


def _cloud(n=40, seed=0):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(size=(n, 2))
    feats = (rng.random(n) < 0.3).astype(np.int64)
    return pts, feats


def _rot(theta: float) -> np.ndarray:
    c, s = np.cos(theta), np.sin(theta)
    return np.array([[c, -s], [s, c]])


# --- satellite: symmetry-aware extent snapping --------------------------------


def test_snapping_merges_fractional_extent_mirrors():
    """A mirror pair whose y-extent is fractional in quanta previously split
    into two conservative classes; extent snapping merges them."""
    tol = 0.25
    a = np.array([[0.0, 0.0], [0.5, 0.4], [1.0, 0.61]])
    b = a.copy()
    b[:, 1] = 0.61 - a[:, 1]  # mirror in y
    # the historical behaviour: signatures split
    assert canonical_signature(a, tolerance=tol, snap_extents=False) != \
        canonical_signature(b, tolerance=tol, snap_extents=False)
    # snapped (default): the mirror symmetry is recovered
    assert canonical_signature(a, tolerance=tol) == \
        canonical_signature(b, tolerance=tol)


def test_snapping_ignores_sub_quantum_axes():
    """An axis flat up to numerical noise must not be resolved at noise
    precision: sub-quantum jitter still cannot split a class."""
    pts = np.array([[0.0, 0.0], [0.4, 0.0], [1.0, 0.0]])
    noisy = pts.copy()
    noisy[1, 1] = 1e-12  # jitter far below the quantum
    a = canonical_frame(pts)
    b = canonical_frame(noisy)
    assert np.array_equal(a.lattice, b.lattice)
    assert canonical_signature(pts) == canonical_signature(noisy)


def test_snapping_is_identity_on_integral_lattices():
    grid = np.array(
        [[x, y] for x in range(5) for y in range(5)], dtype=np.float64
    ) * 0.05
    snapped = canonical_frame(grid)
    raw = canonical_frame(grid, snap_extents=False)
    assert np.array_equal(snapped.lattice, raw.lattice)
    assert snapped.axis_quanta is not None and raw.axis_quanta is None


def test_snapping_keeps_floating_grid_class_counts():
    """The floating 5x5 collapse (9 exact / 3 canonical classes) must be
    unchanged by the snapping — it only *adds* symmetry."""
    from repro.batch import BatchAssembler, items_from_decomposition
    from repro.core import default_config
    from repro.dd import decompose
    from repro.fem import heat_transfer_2d

    problem = heat_transfer_2d(15, dirichlet=())
    dec = decompose(problem, grid=(5, 5))
    items = items_from_decomposition(dec)
    res = BatchAssembler(config=default_config("gpu", 2)).assemble_batch(
        items, execute=False
    )
    assert res.stats.n_groups == 3
    assert res.stats.n_exact_groups == 9
    assert res.stats.n_geometric_groups == 3


# --- inertia alignment --------------------------------------------------------


def test_inertia_alignment_refuses_degenerate_spectra():
    square = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    assert inertia_alignment(square) is None
    aligned, rotated = rotation_coords(square)
    assert not rotated and np.array_equal(aligned, square)


def test_inertia_alignment_orders_moments_descending():
    pts, _ = _cloud(seed=5)
    pts[:, 0] *= 3.0  # x clearly dominant
    axes = inertia_alignment(pts)
    assert axes is not None
    aligned, rotated = rotation_coords(pts)
    assert rotated
    var = aligned.var(axis=0)
    assert var[0] > var[1]
    assert np.allclose(axes.T @ axes, np.eye(2), atol=1e-12)


# --- rotation signature -------------------------------------------------------


def test_rotation_signature_invariant_under_rigid_motion():
    pts, feats = _cloud(seed=7)
    ref = rotation_signature(pts, feats)
    for theta in (0.3, 1.234, 2.9):
        moved = pts @ _rot(theta).T + np.array([5.0, -2.0])
        assert rotation_signature(moved, feats) == ref
    mirrored = pts * np.array([-1.0, 1.0])
    assert rotation_signature(mirrored, feats) == ref
    # the axis-aligned signature cannot see through a free rotation
    assert canonical_signature(pts @ _rot(0.7341).T, feats) != \
        canonical_signature(pts, feats)


def test_rotation_signature_separates_different_labels_and_shapes():
    pts, feats = _cloud(seed=9)
    other = feats.copy()
    other[np.flatnonzero(other == 0)[:3]] = 1
    assert rotation_signature(pts, feats) != rotation_signature(pts, other)
    stretched = pts * np.array([2.0, 1.0])
    assert rotation_signature(stretched, feats) != rotation_signature(pts, feats)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=50),
    theta=st.floats(min_value=-3.1, max_value=3.1),
    tx=st.floats(min_value=-5.0, max_value=5.0),
)
def test_rotation_signature_invariance_hypothesis(seed, theta, tx):
    pts, feats = _cloud(n=25, seed=seed)
    moved = pts @ _rot(theta).T + np.array([tx, 0.5 * tx])
    assert rotation_signature(moved, feats) == rotation_signature(pts, feats)


# --- near signature -----------------------------------------------------------


def test_near_signature_rigid_and_scale_invariant():
    pts, feats = _cloud(seed=11)
    ref = near_signature(pts, feats)
    assert near_signature(pts @ _rot(1.1).T * 2.5 + 7.0, feats) == ref


def test_near_signature_groups_approximate_congruence_but_splits_shapes():
    pts, feats = _cloud(n=60, seed=13)
    wiggled = pts + np.random.default_rng(1).normal(scale=1e-3, size=pts.shape)
    assert near_signature(wiggled, feats) == near_signature(pts, feats)
    anisotropic = pts * np.array([4.0, 1.0])
    assert near_signature(anisotropic, feats) != near_signature(pts, feats)
    # size buckets: 3x the points is a different class
    tripled = np.vstack([pts, pts + 10.0, pts - 10.0])
    assert near_signature(tripled) != near_signature(pts)


def test_near_signature_validates():
    pts, _ = _cloud()
    with pytest.raises(ValueError):
        near_signature(pts, size_tolerance=0.0)
    with pytest.raises(ValueError):
        near_signature(pts, radial_bins=-1)


# --- rotations in the canonical relabeling ------------------------------------


def test_relabeling_rotations_merge_rotated_congruent_subdomains():
    """Two congruent glued subdomains at 90° share a rotation-relabeled
    signature; with rotations off they only merge because 90° is an axis
    permutation — so use an oblique angle to show the difference."""
    rng = np.random.default_rng(17)
    pts = rng.uniform(size=(30, 2))
    pts[:, 0] *= 2.0  # stable inertia spectrum
    k = sp.random(30, 30, density=0.2, random_state=3)
    k = (k + k.T + sp.eye(30)).tocsr()
    bt = sp.random(30, 8, density=0.2, random_state=4, format="csc")
    bt.data[:] = 1.0
    theta = 0.7341
    moved = pts @ _rot(theta).T + 3.0

    plain = canonical_relabeling(pts, k=k, bt=bt)
    plain_moved = canonical_relabeling(moved, k=k, bt=bt)
    assert plain.signature != plain_moved.signature

    rot = canonical_relabeling(pts, k=k, bt=bt, rotations=True)
    rot_moved = canonical_relabeling(moved, k=k, bt=bt, rotations=True)
    assert rot.signature == rot_moved.signature
    # the relabeling is still a pure permutation pair (invertible map)
    assert np.array_equal(np.sort(rot.dof_perm), np.arange(30))
    assert np.array_equal(np.sort(rot.col_perm), np.arange(8))


def test_relabeling_rotations_safe_on_degenerate_spectra():
    """Isotropic (structured-box) subdomains keep the axis-aligned frame, so
    rotations=True is a no-op for them."""
    grid = np.array(
        [[x, y] for x in range(4) for y in range(4)], dtype=np.float64
    )
    k = sp.eye(16, format="csr")
    bt = sp.eye(16, format="csc")[:, :5]
    a = canonical_relabeling(grid, k=k, bt=bt, rotations=True)
    b = canonical_relabeling(grid, k=k, bt=bt, rotations=False)
    assert np.array_equal(a.dof_perm, b.dof_perm)


# --- engine + planner integration --------------------------------------------


def _unstructured_items(n_parts=8, cells=16, seed=0):
    from repro.batch import items_from_decomposition
    from repro.dd import decompose
    from repro.fem import heat_problem
    from repro.part import jittered_square_mesh

    mesh = jittered_square_mesh(cells, jitter=0.25, seed=seed)
    dec = decompose(
        heat_problem(mesh), n_subdomains=n_parts, partitioner="rcb", seed=seed
    )
    return dec, items_from_decomposition(dec)


def test_engine_near_mode_groups_unstructured_pricing():
    from repro.batch import BatchAssembler
    from repro.core import default_config

    dec, items = _unstructured_items()
    cfg = default_config("gpu", 2)
    near = BatchAssembler(config=cfg, signature_mode="near").assemble_batch(
        items, execute=False
    )
    frame = BatchAssembler(config=cfg, signature_mode="frame").assemble_batch(
        items, execute=False
    )
    # exact classes are all singletons on a jittered mesh...
    assert near.stats.n_exact_groups == dec.n_subdomains
    assert near.stats.singleton_share == 1.0
    # ...the frame signature cannot group them either, but near pricing can
    assert frame.stats.n_geometric_groups == dec.n_subdomains
    assert near.stats.n_geometric_groups < dec.n_subdomains
    with pytest.raises(ValueError):
        BatchAssembler(config=cfg, signature_mode="exact")


def test_plan_population_near_signature():
    from repro.feti.planner import plan_population

    dec, items = _unstructured_items()
    members = [(it.factor, it.bt) for it in items]
    coords = [it.coords for it in items]
    near = plan_population(
        members, dim=2, expected_iterations=40, coords=coords, signature="near"
    )
    frame = plan_population(
        members, dim=2, expected_iterations=40, coords=coords, signature="frame"
    )
    assert near.n_members == frame.n_members == dec.n_subdomains
    assert near.n_groups < frame.n_groups
    assert all(near.chosen_for(i) for i in range(near.n_members))
    with pytest.raises(ValueError):
        plan_population(
            members, dim=2, expected_iterations=40, coords=coords, signature="bogus"
        )


def test_stats_grouping_efficiency_line():
    from repro.batch import BatchStats

    stats = BatchStats(n_subdomains=12, n_groups=4, n_singleton_groups=1)
    assert stats.members_per_group == 3.0
    assert stats.singleton_share == 0.25
    assert "1/4" in stats.summary()
    merged = stats.merge(BatchStats(n_subdomains=4, n_groups=4, n_singleton_groups=4))
    assert merged.n_singleton_groups == 5
    empty = BatchStats()
    assert empty.members_per_group == 0.0 and empty.singleton_share == 0.0
    assert "grouping:" not in empty.summary()
